// Completion-event-driven stage graph: the execution substrate of the
// conference engine (multiuser_session.cpp).
//
// A StageGraph is a DAG of typed nodes — arbiter / encode / uplink
// ticket / downlink fan-out / decode / retire — added in the canonical
// serial order (the legacy per-tick phase order) with explicit
// dependency edges. Two executors share the node bodies:
//
//  - runSerial() executes nodes in insertion order on the calling
//    thread. Because every edge points from a lower to a higher index
//    (addEdge enforces it), insertion order is a valid topological
//    order, and it is by construction *the* order the legacy barrier
//    engine used — so the serial stage-graph engine is byte-identical
//    to the pre-refactor engine.
//
//  - runParallel(pool) executes event-driven: each node carries an
//    atomic pending-dependency count; completing a node decrements its
//    successors, and whichever worker drops a count to zero submits
//    that node to the pool. No phase barriers anywhere — a node runs
//    the instant its dependencies are done. Byte-identity with the
//    serial executor follows from the edge set alone: every mutable
//    resource (a user's channel/clock/estimator/policy, a link's FIFO
//    and RNG, a viewer's downlink, the arbiter inputs) is confined to
//    one dependency chain, so both executors touch each resource in the
//    same per-resource order with the same inputs.
//
// Node bodies return their *simulated* stage cost (ms). After a run,
// fillStats() aggregates per-stage occupancy/latency telemetry and
// list-schedules the recorded costs twice — once over the real DAG,
// once under the legacy three-phase tick barrier — producing a
// deterministic, runner-independent pipelining speedup (the
// BENCH_conference CI gate).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "semholo/core/session.hpp"

namespace semholo::core {
class ThreadPool;
}

namespace semholo::core::internal {

enum class StageKind : int {
    Arbiter = 0,
    Encode = 1,
    Uplink = 2,    // sequenced link-entry ticket
    Downlink = 3,  // per-viewer fan-out
    Decode = 4,
    Retire = 5,    // tick-completion join; releases the ring slot
};
inline constexpr std::size_t kStageKindCount = 6;
const char* stageName(StageKind kind);

struct StageNode {
    StageKind kind{StageKind::Encode};
    std::uint32_t tick{0};
    // Participant (or viewer) index; SIZE_MAX for conference-wide nodes
    // (the shared arbiter, retire joins).
    std::size_t user{std::numeric_limits<std::size_t>::max()};
    // Body; returns the node's simulated stage cost in ms (0 for
    // bookkeeping stages). Exceptions propagate out of the run.
    std::function<double()> run;
    std::vector<std::size_t> successors;
    int initialPending{0};
    std::atomic<int> pending{0};
    // Telemetry. Each field has exactly one writer with a
    // happens-before edge to every reader: readyMs is written by the
    // thread that released the node (before the pool submit), startMs /
    // endMs / simCostMs by the executing thread, and fillStats() reads
    // only after the run completed.
    double simCostMs{0.0};
    double readyMs{0.0};
    double startMs{0.0};
    double endMs{0.0};

    StageNode() = default;
    StageNode(const StageNode&) = delete;
    StageNode& operator=(const StageNode&) = delete;
};

class StageGraph {
public:
    std::size_t addNode(StageKind kind, std::uint32_t tick, std::size_t user,
                        std::function<double()> run);
    // Dependency: 'to' may not start before 'from' completed. Edges must
    // point forward (from < to) so insertion order stays topological.
    void addEdge(std::size_t from, std::size_t to);

    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t edgeCount() const { return edges_; }

    // Execute nodes in insertion order on the calling thread.
    void runSerial();
    // Execute event-driven over the pool; blocks until every node
    // completed. The first node-body exception is rethrown (remaining
    // node bodies are skipped, but the graph still drains).
    void runParallel(ThreadPool& pool);

    // Aggregate the last run into 'stats' and compute the deterministic
    // stage-graph vs tick-barrier schedule comparison at
    // 'scheduleWorkers' workers. Call after runSerial()/runParallel().
    void fillStats(PipelineStats& stats, std::size_t scheduleWorkers) const;

private:
    void execute(std::size_t index, ThreadPool& pool);
    double msSinceStart() const;
    void simulateSchedules(PipelineStats& stats,
                           std::size_t scheduleWorkers) const;

    // deque: stable addresses, in-place construction (StageNode holds an
    // atomic and is neither copyable nor movable).
    std::deque<StageNode> nodes_;
    std::size_t edges_{0};

    std::chrono::steady_clock::time_point runStart_{};
    double wallMs_{0.0};
    bool eventDriven_{false};

    std::atomic<std::size_t> remaining_{0};
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    // Completion flag guarded by doneMutex_ (not an atomic predicate on
    // remaining_): the last worker sets it and notifies while holding
    // the lock, so the waiter cannot observe completion, return and
    // destroy the cv while that worker is still inside notify_all.
    bool done_{false};
    std::atomic<bool> failed_{false};
    std::mutex errorMutex_;
    std::exception_ptr firstError_;

    // Occupancy tracking (parallel runs; serial runs are concurrency 1).
    std::atomic<int> active_[kStageKindCount]{};
    std::atomic<int> maxActive_[kStageKindCount]{};
    std::atomic<std::uint32_t> retiredTicks_{0};
    std::atomic<std::size_t> maxTicksInFlight_{0};
    telemetry::Histogram ticksInFlight_;  // internally thread-safe
};

}  // namespace semholo::core::internal
