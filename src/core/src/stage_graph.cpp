#include "stage_graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>
#include <stdexcept>

#include "semholo/core/thread_pool.hpp"

namespace semholo::core::internal {

namespace {

void storeMax(std::atomic<int>& target, int value) {
    int cur = target.load(std::memory_order_relaxed);
    while (cur < value &&
           !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

void storeMax(std::atomic<std::size_t>& target, std::size_t value) {
    std::size_t cur = target.load(std::memory_order_relaxed);
    while (cur < value &&
           !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

// Greedy in-order assignment of independent task costs to the earliest
// free of 'workers' workers; returns the phase span. This is exactly how
// the legacy engine's parallelFor spread a phase across the pool.
double listSpan(const std::vector<double>& costs, std::size_t workers) {
    if (costs.empty()) return 0.0;
    std::priority_queue<double, std::vector<double>, std::greater<double>> free;
    for (std::size_t w = 0; w < workers; ++w) free.push(0.0);
    double span = 0.0;
    for (double c : costs) {
        const double start = free.top();
        free.pop();
        const double finish = start + c;
        free.push(finish);
        span = std::max(span, finish);
    }
    return span;
}

}  // namespace

const char* stageName(StageKind kind) {
    switch (kind) {
        case StageKind::Arbiter: return "arbiter";
        case StageKind::Encode: return "encode";
        case StageKind::Uplink: return "uplink";
        case StageKind::Downlink: return "downlink";
        case StageKind::Decode: return "decode";
        case StageKind::Retire: return "retire";
    }
    return "unknown";
}

std::size_t StageGraph::addNode(StageKind kind, std::uint32_t tick,
                                std::size_t user, std::function<double()> run) {
    StageNode& node = nodes_.emplace_back();
    node.kind = kind;
    node.tick = tick;
    node.user = user;
    node.run = std::move(run);
    return nodes_.size() - 1;
}

void StageGraph::addEdge(std::size_t from, std::size_t to) {
    assert(from < to && to < nodes_.size() &&
           "stage-graph edges must point forward so insertion order stays "
           "topological");
    nodes_[from].successors.push_back(to);
    ++nodes_[to].initialPending;
    ++edges_;
}

double StageGraph::msSinceStart() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - runStart_)
        .count();
}

void StageGraph::runSerial() {
    runStart_ = std::chrono::steady_clock::now();
    eventDriven_ = false;
    retiredTicks_.store(0, std::memory_order_relaxed);
    // Release-latency bookkeeping mirrors the parallel executor: a node
    // is "ready" the moment its last dependency completes, and in-order
    // execution may only reach it later.
    std::vector<int> pending(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        pending[i] = nodes_[i].initialPending;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        StageNode& node = nodes_[i];
        assert(pending[i] == 0 && "insertion order must be topological");
        maxActive_[static_cast<int>(node.kind)].store(
            1, std::memory_order_relaxed);
        if (node.kind == StageKind::Encode) {
            const std::size_t inFlight =
                static_cast<std::size_t>(node.tick) + 1 -
                retiredTicks_.load(std::memory_order_relaxed);
            ticksInFlight_.record(static_cast<double>(inFlight));
            storeMax(maxTicksInFlight_, inFlight);
        }
        node.startMs = msSinceStart();
        node.simCostMs = node.run();
        node.endMs = msSinceStart();
        if (node.kind == StageKind::Retire)
            retiredTicks_.fetch_add(1, std::memory_order_relaxed);
        for (const std::size_t s : node.successors)
            if (--pending[s] == 0) nodes_[s].readyMs = node.endMs;
    }
    wallMs_ = msSinceStart();
}

void StageGraph::runParallel(ThreadPool& pool) {
    runStart_ = std::chrono::steady_clock::now();
    eventDriven_ = true;
    if (nodes_.empty()) {
        wallMs_ = 0.0;
        return;
    }
    retiredTicks_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    remaining_.store(nodes_.size(), std::memory_order_relaxed);
    done_ = false;  // no workers are running yet; no lock needed
    for (StageNode& node : nodes_)
        node.pending.store(node.initialPending, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kStageKindCount; ++i) {
        active_[i].store(0, std::memory_order_relaxed);
        maxActive_[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].initialPending != 0) continue;
        nodes_[i].readyMs = 0.0;
        pool.submit([this, &pool, i] { execute(i, pool); });
    }
    {
        std::unique_lock<std::mutex> lock(doneMutex_);
        doneCv_.wait(lock, [this] { return done_; });
    }
    wallMs_ = msSinceStart();
    if (failed_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (firstError_) std::rethrow_exception(firstError_);
    }
}

void StageGraph::execute(std::size_t index, ThreadPool& pool) {
    StageNode& node = nodes_[index];
    const int kind = static_cast<int>(node.kind);
    node.startMs = msSinceStart();
    const int nowActive =
        active_[kind].fetch_add(1, std::memory_order_relaxed) + 1;
    storeMax(maxActive_[kind], nowActive);
    if (node.kind == StageKind::Encode) {
        // A relaxed (possibly stale) retired count can only undercount,
        // so in-flight is a safe overestimate; it can never underflow
        // because R(f) depends transitively on E(f).
        const std::size_t inFlight =
            static_cast<std::size_t>(node.tick) + 1 -
            retiredTicks_.load(std::memory_order_relaxed);
        ticksInFlight_.record(static_cast<double>(inFlight));
        storeMax(maxTicksInFlight_, inFlight);
    }
    if (!failed_.load(std::memory_order_acquire)) {
        try {
            node.simCostMs = node.run();
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!firstError_) firstError_ = std::current_exception();
            failed_.store(true, std::memory_order_release);
        }
    }
    node.endMs = msSinceStart();
    active_[kind].fetch_sub(1, std::memory_order_relaxed);
    if (node.kind == StageKind::Retire)
        retiredTicks_.fetch_add(1, std::memory_order_relaxed);
    for (const std::size_t s : node.successors) {
        StageNode& succ = nodes_[s];
        if (succ.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last dependency: this thread releases the successor. The
            // pool's queue mutex orders this write before the worker
            // that dequeues the task reads it.
            succ.readyMs = msSinceStart();
            pool.submit([this, &pool, s] { execute(s, pool); });
        }
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Set the flag and notify under the lock: the waiter re-checks
        // done_ only while holding doneMutex_, so it cannot return (and
        // destroy this graph) until this thread has released the lock —
        // after its last touch of doneCv_.
        std::lock_guard<std::mutex> lock(doneMutex_);
        done_ = true;
        doneCv_.notify_all();
    }
}

void StageGraph::fillStats(PipelineStats& stats,
                           std::size_t scheduleWorkers) const {
    stats.eventDriven = eventDriven_;
    stats.workers = std::max<std::size_t>(1, scheduleWorkers);
    stats.nodes = nodes_.size();
    stats.edges = edges_;
    stats.wallMs = wallMs_;
    stats.maxTicksInFlight = maxTicksInFlight_.load(std::memory_order_relaxed);
    stats.ticksInFlight = ticksInFlight_;
    stats.stages.clear();
    for (std::size_t k = 0; k < kStageKindCount; ++k) {
        PipelineStageStats stage;
        stage.stage = stageName(static_cast<StageKind>(k));
        stage.maxConcurrent = static_cast<std::size_t>(
            std::max(0, maxActive_[k].load(std::memory_order_relaxed)));
        for (const StageNode& node : nodes_) {
            if (static_cast<std::size_t>(node.kind) != k) continue;
            ++stage.nodes;
            stage.busyMs += node.endMs - node.startMs;
            stage.releaseLatencyMs.record(
                std::max(0.0, node.startMs - node.readyMs));
        }
        if (stage.nodes > 0) stats.stages.push_back(std::move(stage));
    }
    simulateSchedules(stats, stats.workers);
}

// Deterministic list scheduling of the recorded per-node simulated costs:
// (a) over the real dependency DAG (the event-driven schedule), and
// (b) under the legacy engine's per-tick structure — encode phase fanned
// across the pool, sequenced arbiter/uplink stage, downlink phase, decode
// phase, with a barrier between phases and between ticks. Both are pure
// functions of (graph, costs, workers); ties release in node-index order,
// so results are bit-stable across runs and hosts.
void StageGraph::simulateSchedules(PipelineStats& stats,
                                   std::size_t workers) const {
    stats.simulatedStageGraphMs = 0.0;
    stats.simulatedBarrierMs = 0.0;
    stats.simulatedSpeedup = 1.0;
    stats.simulatedIdleMs = 0.0;
    stats.simulatedBarrierIdleMs = 0.0;
    if (nodes_.empty() || workers == 0) return;
    const std::size_t n = nodes_.size();
    double totalCost = 0.0;
    for (const StageNode& node : nodes_) totalCost += node.simCostMs;

    // ---- (a) DAG schedule --------------------------------------------------
    std::vector<int> indegree(n);
    for (std::size_t i = 0; i < n; ++i) indegree[i] = nodes_[i].initialPending;
    std::set<std::size_t> ready;  // ordered: lowest index first
    for (std::size_t i = 0; i < n; ++i)
        if (indegree[i] == 0) ready.insert(i);
    using Event = std::pair<double, std::size_t>;  // (finish, node)
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
    std::size_t freeWorkers = workers;
    std::size_t scheduled = 0;
    double t = 0.0;
    double makespan = 0.0;
    while (scheduled < n || !events.empty()) {
        if (freeWorkers > 0 && !ready.empty()) {
            const std::size_t idx = *ready.begin();
            ready.erase(ready.begin());
            const double finish = t + nodes_[idx].simCostMs;
            events.push({finish, idx});
            --freeWorkers;
            ++scheduled;
            makespan = std::max(makespan, finish);
            continue;
        }
        if (events.empty()) break;  // defensive: would mean a cycle
        t = events.top().first;
        while (!events.empty() && events.top().first == t) {
            const std::size_t done = events.top().second;
            events.pop();
            ++freeWorkers;
            for (const std::size_t s : nodes_[done].successors)
                if (--indegree[s] == 0) ready.insert(s);
        }
    }
    stats.simulatedStageGraphMs = makespan;
    stats.simulatedIdleMs =
        static_cast<double>(workers) * makespan - totalCost;

    // ---- (b) tick-barrier schedule -----------------------------------------
    std::uint32_t maxTick = 0;
    for (const StageNode& node : nodes_) maxTick = std::max(maxTick, node.tick);
    std::vector<std::vector<double>> encodeCosts(maxTick + 1),
        downlinkCosts(maxTick + 1), decodeCosts(maxTick + 1);
    std::vector<double> sequencedCost(maxTick + 1, 0.0);
    for (const StageNode& node : nodes_) {
        switch (node.kind) {
            case StageKind::Encode:
                encodeCosts[node.tick].push_back(node.simCostMs);
                break;
            case StageKind::Downlink:
                downlinkCosts[node.tick].push_back(node.simCostMs);
                break;
            case StageKind::Decode:
                decodeCosts[node.tick].push_back(node.simCostMs);
                break;
            case StageKind::Arbiter:
            case StageKind::Uplink:
                sequencedCost[node.tick] += node.simCostMs;
                break;
            case StageKind::Retire:
                break;
        }
    }
    double barrier = 0.0;
    for (std::uint32_t f = 0; f <= maxTick; ++f) {
        barrier += listSpan(encodeCosts[f], workers) + sequencedCost[f] +
                   listSpan(downlinkCosts[f], workers) +
                   listSpan(decodeCosts[f], workers);
    }
    stats.simulatedBarrierMs = barrier;
    stats.simulatedBarrierIdleMs =
        static_cast<double>(workers) * barrier - totalCost;
    stats.simulatedSpeedup =
        makespan > 0.0 ? barrier / makespan : 1.0;
}

}  // namespace semholo::core::internal
