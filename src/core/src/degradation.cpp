#include "semholo/core/degradation.hpp"

#include <algorithm>
#include <cmath>

namespace semholo::core {

DegradationPolicy::DegradationPolicy(const DegradationConfig& config, double fps,
                                     std::size_t queueCapacityBytes)
    : config_(config),
      frameIntervalS_(fps > 0.0 ? 1.0 / fps : 1.0 / 30.0),
      queueCapacityBytes_(queueCapacityBytes) {}

double DegradationPolicy::bandwidthScale() const {
    return std::pow(config_.stepScale, static_cast<double>(level_));
}

bool DegradationPolicy::congested(const LinkObservation& obs) const {
    if (!obs.delivered) return true;
    if (obs.queueDrops > 0 || obs.unrecoveredPackets > 0 || obs.faultEvents > 0)
        return true;
    if (obs.transferS > config_.latencyBudgetFrames * frameIntervalS_) return true;
    // Arbiter target: sending above the allocated share is congestion
    // even when the link still delivered (the overshoot lands in the
    // shared queue and starves other participants).
    if (targetRateBps_ > 0.0 && obs.bytes > 0 &&
        static_cast<double>(obs.bytes) * 8.0 >
            targetRateBps_ * config_.targetOvershoot * frameIntervalS_)
        return true;
    if (queueCapacityBytes_ > 0 &&
        static_cast<double>(obs.queuedBytesAtSend) >
            config_.queuePressure * static_cast<double>(queueCapacityBytes_))
        return true;
    return false;
}

DegradationAction DegradationPolicy::observe(std::uint32_t frameId,
                                             const LinkObservation& obs) {
    if (!config_.enabled) return DegradationAction::Hold;
    if (congested(obs)) {
        ++badStreak_;
        goodStreak_ = 0;
        if (badStreak_ >= config_.downgradeAfter && level_ < config_.maxLevel) {
            ++level_;
            ++downgrades_;
            badStreak_ = 0;
            decisions_.push_back({frameId, DegradationAction::StepDown, level_});
            return DegradationAction::StepDown;
        }
    } else {
        ++goodStreak_;
        badStreak_ = 0;
        if (goodStreak_ >= config_.upgradeAfter && level_ > 0) {
            --level_;
            ++upgrades_;
            goodStreak_ = 0;
            decisions_.push_back({frameId, DegradationAction::StepUp, level_});
            return DegradationAction::StepUp;
        }
    }
    return DegradationAction::Hold;
}

void DegradationPolicy::reset() {
    targetRateBps_ = 0.0;
    level_ = 0;
    badStreak_ = 0;
    goodStreak_ = 0;
    downgrades_ = 0;
    upgrades_ = 0;
    decisions_.clear();
}

}  // namespace semholo::core
