#include "semholo/core/degradation.hpp"

#include <algorithm>
#include <cmath>

namespace semholo::core {

DegradationPolicy::DegradationPolicy(const DegradationConfig& config, double fps,
                                     std::size_t queueCapacityBytes)
    : config_(config),
      frameIntervalS_(fps > 0.0 ? 1.0 / fps : 1.0 / 30.0),
      queueCapacityBytes_(queueCapacityBytes) {}

double DegradationPolicy::bandwidthScale() const {
    return std::pow(config_.stepScale, static_cast<double>(level_));
}

bool DegradationPolicy::congested(const LinkObservation& obs) const {
    if (!obs.delivered) return true;
    if (obs.queueDrops > 0 || obs.unrecoveredPackets > 0 || obs.faultEvents > 0)
        return true;
    if (obs.transferS > config_.latencyBudgetFrames * frameIntervalS_) return true;
    // Arbiter target: sending above the allocated share is congestion
    // even when the link still delivered (the overshoot lands in the
    // shared queue and starves other participants).
    if (targetRateBps_ > 0.0 && obs.bytes > 0 &&
        static_cast<double>(obs.bytes) * 8.0 >
            targetRateBps_ * config_.targetOvershoot * frameIntervalS_)
        return true;
    if (queueCapacityBytes_ > 0 &&
        static_cast<double>(obs.queuedBytesAtSend) >
            config_.queuePressure * static_cast<double>(queueCapacityBytes_))
        return true;
    return false;
}

void DegradationPolicy::recordDecision(const DegradationDecision& decision) {
    if (decisionRing_.size() < kDecisionHistoryCap) {
        decisionRing_.push_back(decision);
    } else {
        decisionRing_[decisionHead_] = decision;
        decisionHead_ = (decisionHead_ + 1) % kDecisionHistoryCap;
    }
    ++decisionsRecorded_;
}

std::vector<DegradationDecision> DegradationPolicy::decisions() const {
    std::vector<DegradationDecision> out;
    out.reserve(decisionRing_.size());
    for (std::size_t i = 0; i < decisionRing_.size(); ++i)
        out.push_back(
            decisionRing_[(decisionHead_ + i) % decisionRing_.size()]);
    return out;
}

DegradationAction DegradationPolicy::observe(std::uint32_t frameId,
                                             const LinkObservation& obs) {
    if (!config_.enabled) return DegradationAction::Hold;
    if (congested(obs)) {
        ++badStreak_;
        goodStreak_ = 0;
        if (badStreak_ >= config_.downgradeAfter && level_ < config_.maxLevel) {
            ++level_;
            ++downgrades_;
            badStreak_ = 0;
            recordDecision({frameId, DegradationAction::StepDown, level_});
            return DegradationAction::StepDown;
        }
        // Pinned at maxLevel (or downgrade disabled): the streak keeps
        // growing with nothing left to trigger. Clamp at the threshold —
        // >= comparisons behave identically, and a multi-billion-frame
        // soak cannot overflow the signed counter into UB.
        badStreak_ = std::min(badStreak_, std::max(config_.downgradeAfter, 1));
    } else {
        ++goodStreak_;
        badStreak_ = 0;
        if (goodStreak_ >= config_.upgradeAfter && level_ > 0) {
            --level_;
            ++upgrades_;
            goodStreak_ = 0;
            recordDecision({frameId, DegradationAction::StepUp, level_});
            return DegradationAction::StepUp;
        }
        // Same clamp for a long clean run already at level 0.
        goodStreak_ = std::min(goodStreak_, std::max(config_.upgradeAfter, 1));
    }
    return DegradationAction::Hold;
}

void DegradationPolicy::reset() {
    targetRateBps_ = 0.0;
    level_ = 0;
    badStreak_ = 0;
    goodStreak_ = 0;
    downgrades_ = 0;
    upgrades_ = 0;
    decisionRing_.clear();
    decisionHead_ = 0;
    decisionsRecorded_ = 0;
}

}  // namespace semholo::core
