// Conference entry points and the bandwidth arbiter. The engine itself
// (the event-driven stage-graph scheduler) lives in multiuser_session.cpp;
// this file owns the descriptor -> channel construction, the per-tick
// allocation math, and the JSON export of session / conference stats.
#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "semholo/core/conference.hpp"
#include "semholo/core/thread_pool.hpp"
#include "session_internal.hpp"

namespace semholo::core {

// ---- SubscriptionLadder ----------------------------------------------------

std::optional<double> SubscriptionLadder::scaleForPosition(
    std::size_t position) const {
    if (rungs.empty()) return 1.0;  // implicit everything-at-full-quality rung
    std::size_t covered = 0;
    for (const SubscriptionRung& rung : rungs) {
        // Saturating add: the default rung spans "all remaining".
        if (rung.streams >= std::numeric_limits<std::size_t>::max() - covered)
            return position >= covered ? std::optional<double>(rung.byteScale)
                                       : std::nullopt;
        covered += rung.streams;
        if (position < covered) return rung.byteScale;
    }
    return std::nullopt;  // past the last rung: unsubscribed
}

// ---- BandwidthArbiter ------------------------------------------------------

std::vector<double> BandwidthArbiter::allocate(
    double capacityBps, const std::vector<double>& demandBps,
    const std::vector<double>& meanThroughputBps) const {
    const std::size_t users = demandBps.size();
    std::vector<double> targets(users, 0.0);
    if (users == 0) return targets;
    const double budget =
        std::max(0.0, capacityBps) * std::clamp(config_.safety, 0.0, 1.0);
    const double floor = std::max(0.0, config_.minRateBps);

    switch (config_.strategy) {
        case ArbiterStrategy::None: {
            // No coordination: everyone may chase the whole pipe.
            std::fill(targets.begin(), targets.end(),
                      std::max(budget, floor));
            return targets;
        }
        case ArbiterStrategy::MaxMin: {
            // Water-filling: repeatedly hand every unsatisfied user an
            // equal share of what is left; users whose demand is below
            // the share are capped at their demand and their surplus is
            // redistributed. Demand <= 0 means unknown -> greedy (never
            // satisfied early).
            std::vector<bool> fixed(users, false);
            double remaining = budget;
            std::size_t active = users;
            while (active > 0) {
                const double share = remaining / static_cast<double>(active);
                bool capped = false;
                for (std::size_t u = 0; u < users; ++u) {
                    if (fixed[u]) continue;
                    if (demandBps[u] > 0.0 && demandBps[u] <= share) {
                        targets[u] = demandBps[u];
                        remaining -= demandBps[u];
                        fixed[u] = true;
                        --active;
                        capped = true;
                    }
                }
                if (!capped) {
                    for (std::size_t u = 0; u < users; ++u)
                        if (!fixed[u]) targets[u] = share;
                    break;
                }
            }
            break;
        }
        case ArbiterStrategy::ProportionalFair: {
            // Shares weighted by inverse historical throughput: users the
            // link has been starving carry the larger weight. A user with
            // no estimate yet gets the heaviest weight in play (they have
            // received nothing so far). Demand still caps the grant and
            // surplus is redistributed, so a satisfied light user cannot
            // hoard share.
            double minTp = std::numeric_limits<double>::max();
            for (double tp : meanThroughputBps)
                if (tp > 0.0) minTp = std::min(minTp, tp);
            if (minTp == std::numeric_limits<double>::max()) minTp = 1.0;
            std::vector<double> weight(users);
            for (std::size_t u = 0; u < users; ++u)
                weight[u] = 1.0 / std::max(meanThroughputBps[u], minTp);
            std::vector<bool> fixed(users, false);
            double remaining = budget;
            std::size_t active = users;
            while (active > 0) {
                double weightSum = 0.0;
                for (std::size_t u = 0; u < users; ++u)
                    if (!fixed[u]) weightSum += weight[u];
                if (weightSum <= 0.0) break;
                bool capped = false;
                for (std::size_t u = 0; u < users; ++u) {
                    if (fixed[u]) continue;
                    const double share = remaining * weight[u] / weightSum;
                    if (demandBps[u] > 0.0 && demandBps[u] <= share) {
                        targets[u] = demandBps[u];
                        remaining -= demandBps[u];
                        fixed[u] = true;
                        --active;
                        capped = true;
                    }
                }
                if (!capped) {
                    for (std::size_t u = 0; u < users; ++u)
                        if (!fixed[u])
                            targets[u] = remaining * weight[u] / weightSum;
                    break;
                }
            }
            break;
        }
    }
    for (double& t : targets) t = std::max(t, floor);
    return targets;
}

// ---- Entry points ----------------------------------------------------------

namespace internal {

MultiSessionStats runConferenceWithChannels(
    const ConferenceConfig& conf, const std::vector<SemanticChannel*>& channels,
    const body::BodyModel& model) {
    const std::size_t workers = effectiveWorkers(conf.session);
    if (workers <= 1) return runConferenceTicked(conf, channels, model, nullptr);
    ThreadPool pool(workers);
    return runConferenceTicked(conf, channels, model, &pool);
}

}  // namespace internal

MultiSessionStats runConference(const ConferenceConfig& config,
                                const body::BodyModel& model) {
    std::vector<std::unique_ptr<SemanticChannel>> owned;
    owned.reserve(config.participants.size());
    for (const Participant& p : config.participants) {
        if (p.channelFactory) {
            owned.push_back(p.channelFactory(model));
            if (!owned.back())
                throw std::invalid_argument(
                    "Participant::channelFactory returned null");
        } else if (!p.channel.kind.empty()) {
            owned.push_back(makeChannel(p.channel, &model));
        } else {
            throw std::invalid_argument(
                "Participant needs a ChannelSpec kind or a channelFactory");
        }
    }
    std::vector<SemanticChannel*> channels;
    channels.reserve(owned.size());
    for (const auto& c : owned) channels.push_back(c.get());
    return internal::runConferenceWithChannels(config, channels, model);
}

// ---- JSON export -----------------------------------------------------------

std::string toJsonValue(const SessionStats& stats) {
    telemetry::JsonWriter w;
    w.beginObject();
    w.field("frames", static_cast<std::uint64_t>(stats.frames.size()));
    w.field("delivered_frames", static_cast<std::uint64_t>(stats.deliveredFrames));
    w.field("decoded_frames", static_cast<std::uint64_t>(stats.decodedFrames));
    w.field("dropped_sender_frames",
            static_cast<std::uint64_t>(stats.droppedSenderFrames));
    w.field("dropped_receiver_frames",
            static_cast<std::uint64_t>(stats.droppedReceiverFrames));
    w.field("mean_bytes_per_frame", stats.meanBytesPerFrame);
    w.field("bandwidth_mbps", stats.bandwidthMbps);
    w.field("mean_extract_ms", stats.meanExtractMs);
    w.field("mean_transfer_ms", stats.meanTransferMs);
    w.field("mean_recon_ms", stats.meanReconMs);
    w.field("mean_e2e_ms", stats.meanE2eMs);
    w.field("p95_e2e_ms", stats.p95E2eMs);
    w.field("achievable_fps", stats.achievableFps);
    if (stats.meanChamfer == stats.meanChamfer)  // skip NaN (not valid JSON)
        w.field("mean_chamfer", stats.meanChamfer);
    w.raw("telemetry", telemetry::toJsonValue(stats.telemetry));
    w.endObject();
    return w.str();
}

std::string toJsonValue(const MultiSessionStats& stats) {
    telemetry::JsonWriter w;
    w.beginObject();
    w.field("users", static_cast<std::uint64_t>(stats.perUser.size()));
    w.field("aggregate_mbps", stats.aggregateMbps);
    w.field("mean_e2e_ms", stats.meanE2eMs);
    w.field("fairness_index", stats.fairnessIndex);
    w.beginArray("fairness");
    for (const UserFairnessStats& f : stats.fairness) {
        w.beginObject()
            .field("user", static_cast<std::uint64_t>(f.user))
            .field("captured_frames", static_cast<std::uint64_t>(f.capturedFrames))
            .field("delivered_frames",
                   static_cast<std::uint64_t>(f.deliveredFrames))
            .field("delivery_ratio", f.deliveryRatio)
            .field("bandwidth_mbps", f.bandwidthMbps)
            .field("bandwidth_share", f.bandwidthShare)
            .field("target_rate_mbps", f.targetRateMbps)
            .field("mean_e2e_ms", f.meanE2eMs)
            .field("degradations", f.degradations)
            .field("upgrades", f.upgrades)
            .field("final_degradation_level",
                   static_cast<std::uint64_t>(f.finalDegradationLevel))
            .endObject();
    }
    w.endArray();
    if (!stats.downlinks.empty()) {
        w.field("server_fanout_frames", stats.serverFanoutFrames);
        w.field("server_fanout_bytes", stats.serverFanoutBytes);
        w.beginArray("downlinks");
        for (const DownlinkStats& d : stats.downlinks) {
            w.beginObject()
                .field("viewer", static_cast<std::uint64_t>(d.viewer))
                .field("frames_forwarded",
                       static_cast<std::uint64_t>(d.framesForwarded))
                .field("frames_delivered",
                       static_cast<std::uint64_t>(d.framesDelivered))
                .field("bytes_forwarded", d.bytesForwarded)
                .field("bytes_delivered", d.bytesDelivered)
                .field("packets", d.packets)
                .field("packets_delivered", d.packetsDelivered)
                .field("packets_unrecovered", d.packetsUnrecovered)
                .field("fanout_share", d.fanoutShare)
                .field("mean_transfer_ms", d.meanTransferMs);
            w.beginArray("streams");
            for (const DownlinkStreamStats& s : d.streams) {
                w.beginObject()
                    .field("source", static_cast<std::uint64_t>(s.source))
                    .field("frames_forwarded",
                           static_cast<std::uint64_t>(s.framesForwarded))
                    .field("frames_delivered",
                           static_cast<std::uint64_t>(s.framesDelivered))
                    .field("bytes_forwarded", s.bytesForwarded)
                    .field("bytes_delivered", s.bytesDelivered)
                    .field("packets", s.packets)
                    .field("packets_delivered", s.packetsDelivered)
                    .field("packets_unrecovered", s.packetsUnrecovered)
                    .endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    }
    const PipelineStats& p = stats.pipeline;
    w.beginObject("pipeline");
    w.field("event_driven", static_cast<std::uint64_t>(p.eventDriven ? 1 : 0));
    w.field("workers", static_cast<std::uint64_t>(p.workers));
    w.field("pipeline_depth", static_cast<std::uint64_t>(p.pipelineDepth));
    w.field("nodes", p.nodes);
    w.field("edges", static_cast<std::uint64_t>(p.edges));
    w.field("max_ticks_in_flight", static_cast<std::uint64_t>(p.maxTicksInFlight));
    w.field("mean_ticks_in_flight", p.ticksInFlight.mean());
    w.field("wall_ms", p.wallMs);
    w.field("simulated_stage_graph_ms", p.simulatedStageGraphMs);
    w.field("simulated_barrier_ms", p.simulatedBarrierMs);
    w.field("simulated_speedup", p.simulatedSpeedup);
    w.field("simulated_idle_ms", p.simulatedIdleMs);
    w.field("simulated_barrier_idle_ms", p.simulatedBarrierIdleMs);
    w.beginArray("stages");
    for (const PipelineStageStats& s : p.stages) {
        w.beginObject()
            .field("stage", s.stage)
            .field("nodes", s.nodes)
            .field("busy_ms", s.busyMs)
            .field("max_concurrent", static_cast<std::uint64_t>(s.maxConcurrent))
            .field("release_latency_count",
                   static_cast<std::uint64_t>(s.releaseLatencyMs.count()))
            .field("release_latency_mean_ms", s.releaseLatencyMs.mean())
            .field("release_latency_p95_ms", s.releaseLatencyMs.p95())
            .field("release_latency_max_ms", s.releaseLatencyMs.max())
            .endObject();
    }
    w.endArray();
    w.endObject();
    w.raw("telemetry", telemetry::toJsonValue(stats.telemetry));
    w.endObject();
    return w.str();
}

}  // namespace semholo::core
