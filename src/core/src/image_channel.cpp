// Image-based semantics (section 3.2): the sender delivers compressed 2D
// views; the receiver maintains a slimmable NeRF — pre-trained on the
// first frame (cold start) and fine-tuned per frame on the changed
// pixels — and renders the remote participant from a novel viewpoint.
#include <chrono>

#include "semholo/capture/rasterizer.hpp"
#include "semholo/compress/texturecodec.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/nerf/trainer.hpp"

namespace semholo::core {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t getU32(std::span<const std::uint8_t> in, std::size_t& pos) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
    return v;
}

class ImageChannel final : public SemanticChannel {
public:
    explicit ImageChannel(const ImageChannelOptions& options)
        : options_(options), field_(fieldConfig(options)) {
        buildCameras();
    }

    std::string name() const override { return "image-nerf"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        const mesh::TriMesh gt = frame.groundTruth();
        putU32(out.data, static_cast<std::uint32_t>(cameras_.size()));
        for (const auto& cam : cameras_) {
            const capture::RGBDFrame view = capture::rasterize(gt, cam);
            const auto blocks = compress::encodeColorBlocks(view.color.data());
            putU32(out.data, static_cast<std::uint32_t>(blocks.size()));
            out.data.insert(out.data.end(), blocks.begin(), blocks.end());
        }
        out.measuredExtractMs = msSince(t0);
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        if (encoded.data.size() < 4) return out;
        const auto t0 = std::chrono::steady_clock::now();

        std::size_t pos = 0;
        const std::uint32_t count = getU32(encoded.data, pos);
        if (count != cameras_.size()) return out;
        std::vector<nerf::TrainView> views;
        for (std::uint32_t v = 0; v < count; ++v) {
            if (pos + 4 > encoded.data.size()) return out;
            const std::uint32_t len = getU32(encoded.data, pos);
            if (pos + len > encoded.data.size()) return out;
            const auto colors = compress::decodeColorBlocks(
                std::span(encoded.data).subspan(pos, len));
            pos += len;
            if (!colors ||
                colors->size() != static_cast<std::size_t>(options_.imageWidth) *
                                      static_cast<std::size_t>(options_.imageHeight))
                return out;
            capture::RGBImage img(options_.imageWidth, options_.imageHeight);
            img.data() = *colors;
            views.push_back({cameras_[v], std::move(img)});
        }

        nerf::TrainerConfig tcfg = trainerConfig();
        nerf::NerfTrainer trainer(field_, tcfg);
        if (!coldStarted_) {
            trainer.pretrain(views, options_.pretrainSteps);
            coldStarted_ = true;
        } else {
            trainer.fineTuneOnChanges(previousViews_, views, options_.fineTuneSteps);
        }
        previousViews_ = views;

        // Render the participant from a novel viewpoint between cameras.
        const geom::Camera novel = ringCamera(0.5f);
        out.view = nerf::renderImage(field_, novel, tcfg.render);
        out.valid = true;
        out.measuredReconMs = msSince(t0);
        return out;
    }

    void reset() override {
        field_ = nerf::RadianceField(fieldConfig(options_));
        coldStarted_ = false;
        previousViews_.clear();
    }

private:
    static nerf::FieldConfig fieldConfig(const ImageChannelOptions& options) {
        nerf::FieldConfig fc;
        fc.encodingLevels = 4;
        fc.hiddenWidth = 40;
        fc.hiddenLayers = 3;
        fc.seed = options.seed;
        return fc;
    }

    nerf::TrainerConfig trainerConfig() const {
        nerf::TrainerConfig tcfg;
        tcfg.render.near = options_.cameraRadius - 1.3f;
        tcfg.render.far = options_.cameraRadius + 1.3f;
        tcfg.render.samplesPerRay = 20;
        tcfg.render.widthFraction = options_.nerfWidthFraction;
        tcfg.raysPerStep = 96;
        tcfg.adam.learningRate = 5e-3f;
        tcfg.seed = options_.seed;
        return tcfg;
    }

    geom::Camera ringCamera(float offset) const {
        const float angle = 2.0f * static_cast<float>(M_PI) *
                            (offset) / static_cast<float>(options_.viewCount);
        const geom::Vec3f eye{options_.cameraRadius * std::sin(angle), 0.2f,
                              options_.cameraRadius * std::cos(angle)};
        return geom::Camera::lookAt(
            eye, {0, 0, 0}, {0, 1, 0},
            geom::CameraIntrinsics::fromFov(options_.imageWidth,
                                            options_.imageHeight, options_.fovY));
    }

    void buildCameras() {
        for (int i = 0; i < options_.viewCount; ++i)
            cameras_.push_back(ringCamera(static_cast<float>(i)));
    }

    ImageChannelOptions options_;
    std::vector<geom::Camera> cameras_;
    nerf::RadianceField field_;
    std::vector<nerf::TrainView> previousViews_;
    bool coldStarted_{false};
};

}  // namespace

std::unique_ptr<SemanticChannel> makeImageChannel(const ImageChannelOptions& options) {
    return std::make_unique<ImageChannel>(options);
}

}  // namespace semholo::core
