// Vector-semantics baseline (section 2.2): a linear (PCA) autoencoder
// over the subject mesh, fitted offline with the snapshot method — the
// Gram matrix of F training frames is eigendecomposed (Jacobi) and the
// leading K components form the encoder/decoder basis shared by both
// ends of the session.
#include <chrono>
#include <cmath>

#include "semholo/core/channel.hpp"
#include "semholo/geometry/eigen.hpp"

namespace semholo::core {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

class VectorChannel final : public SemanticChannel {
public:
    VectorChannel(const body::BodyModel& model, const VectorChannelOptions& options)
        : model_(model), options_(options) {
        train();
    }

    std::string name() const override { return "vector-pca"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        const mesh::TriMesh gt = frame.groundTruth();
        if (gt.vertexCount() != vertexCount_) {
            out.measuredExtractMs = msSince(t0);
            return out;  // wrong subject; empty payload signals failure
        }

        // Project the centred mesh onto the basis.
        out.data.reserve(4 + basisCount_ * 2);
        out.data.push_back(static_cast<std::uint8_t>(out.frameId));
        out.data.push_back(static_cast<std::uint8_t>(out.frameId >> 8));
        out.data.push_back(static_cast<std::uint8_t>(out.frameId >> 16));
        out.data.push_back(static_cast<std::uint8_t>(out.frameId >> 24));
        for (std::size_t k = 0; k < basisCount_; ++k) {
            double c = 0.0;
            const double* u = &basis_[k * dim_];
            for (std::size_t i = 0; i < vertexCount_; ++i) {
                const geom::Vec3f& v = gt.vertices[i];
                c += u[3 * i] * (v.x - mean_[3 * i]) +
                     u[3 * i + 1] * (v.y - mean_[3 * i + 1]) +
                     u[3 * i + 2] * (v.z - mean_[3 * i + 2]);
            }
            // 16-bit quantisation at +-4 sigma of the training coefficient.
            const double scale = coeffScale_[k];
            const auto q = static_cast<std::int16_t>(geom::clamp(
                c / scale * 32767.0, -32767.0, 32767.0));
            out.data.push_back(static_cast<std::uint8_t>(q & 0xFF));
            out.data.push_back(static_cast<std::uint8_t>((q >> 8) & 0xFF));
        }
        out.measuredExtractMs = msSince(t0);
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        if (encoded.data.size() != 4 + basisCount_ * 2) return out;
        const auto t0 = std::chrono::steady_clock::now();

        std::vector<double> coeffs(basisCount_);
        for (std::size_t k = 0; k < basisCount_; ++k) {
            const auto lo = encoded.data[4 + 2 * k];
            const auto hi = encoded.data[4 + 2 * k + 1];
            const auto q = static_cast<std::int16_t>(
                static_cast<std::uint16_t>(lo) |
                (static_cast<std::uint16_t>(hi) << 8));
            coeffs[k] = static_cast<double>(q) / 32767.0 * coeffScale_[k];
        }

        out.mesh.vertices.resize(vertexCount_);
        for (std::size_t i = 0; i < vertexCount_; ++i) {
            double x = mean_[3 * i], y = mean_[3 * i + 1], z = mean_[3 * i + 2];
            for (std::size_t k = 0; k < basisCount_; ++k) {
                const double* u = &basis_[k * dim_];
                x += coeffs[k] * u[3 * i];
                y += coeffs[k] * u[3 * i + 1];
                z += coeffs[k] * u[3 * i + 2];
            }
            out.mesh.vertices[i] = {static_cast<float>(x), static_cast<float>(y),
                                    static_cast<float>(z)};
        }
        out.mesh.triangles = model_.templateMesh().triangles;
        out.mesh.computeVertexNormals();
        out.valid = true;
        out.measuredReconMs = msSince(t0);
        return out;
    }

    // Session-setup payload both ends must share (the decoder "network").
    std::size_t basisBytes() const {
        return (basis_.size() + mean_.size() + coeffScale_.size()) * sizeof(double);
    }

private:
    void train() {
        const body::MotionGenerator gen(options_.trainingMotion, model_.shape(),
                                        options_.trainingSeed);
        const std::size_t frames = std::max<std::size_t>(8, options_.trainingFrames);
        vertexCount_ = model_.templateMesh().vertexCount();
        dim_ = vertexCount_ * 3;

        // Snapshot matrix.
        std::vector<std::vector<double>> snapshots(frames);
        mean_.assign(dim_, 0.0);
        for (std::size_t f = 0; f < frames; ++f) {
            const mesh::TriMesh m = model_.deform(gen.poseAt(f / 30.0));
            auto& snap = snapshots[f];
            snap.resize(dim_);
            for (std::size_t i = 0; i < vertexCount_; ++i) {
                snap[3 * i] = m.vertices[i].x;
                snap[3 * i + 1] = m.vertices[i].y;
                snap[3 * i + 2] = m.vertices[i].z;
            }
            for (std::size_t d = 0; d < dim_; ++d) mean_[d] += snap[d];
        }
        for (double& m : mean_) m /= static_cast<double>(frames);
        for (auto& snap : snapshots)
            for (std::size_t d = 0; d < dim_; ++d) snap[d] -= mean_[d];

        // Gram matrix G_ij = <xc_i, xc_j>.
        std::vector<double> gram(frames * frames);
        for (std::size_t i = 0; i < frames; ++i) {
            for (std::size_t j = i; j < frames; ++j) {
                double dot = 0.0;
                for (std::size_t d = 0; d < dim_; ++d)
                    dot += snapshots[i][d] * snapshots[j][d];
                gram[i * frames + j] = dot;
                gram[j * frames + i] = dot;
            }
        }
        const auto eig = geom::jacobiEigenSymmetric(gram, frames);

        basisCount_ = std::min<std::size_t>(static_cast<std::size_t>(options_.latentDim),
                                            frames);
        basis_.assign(basisCount_ * dim_, 0.0);
        coeffScale_.assign(basisCount_, 1.0);
        std::size_t kept = 0;
        for (std::size_t k = 0; k < basisCount_; ++k) {
            if (eig.values[k] <= 1e-9) break;
            double* u = &basis_[kept * dim_];
            const double* w = eig.vector(k);
            for (std::size_t f = 0; f < frames; ++f) {
                const double wf = w[f];
                if (wf == 0.0) continue;
                const auto& snap = snapshots[f];
                for (std::size_t d = 0; d < dim_; ++d) u[d] += wf * snap[d];
            }
            // Normalize; training coefficient std = sqrt(lambda / F).
            double norm = 0.0;
            for (std::size_t d = 0; d < dim_; ++d) norm += u[d] * u[d];
            norm = std::sqrt(norm);
            if (norm < 1e-12) break;
            for (std::size_t d = 0; d < dim_; ++d) u[d] /= norm;
            coeffScale_[kept] =
                4.0 * std::sqrt(eig.values[k] / static_cast<double>(frames));
            ++kept;
        }
        basisCount_ = std::max<std::size_t>(1, kept);
        basis_.resize(basisCount_ * dim_);
        coeffScale_.resize(basisCount_);
    }

    const body::BodyModel& model_;
    VectorChannelOptions options_;
    std::size_t vertexCount_{0};
    std::size_t dim_{0};
    std::size_t basisCount_{0};
    std::vector<double> mean_;
    std::vector<double> basis_;       // row k = component k (dim_ doubles)
    std::vector<double> coeffScale_;  // quantisation full-scale per coeff
};

}  // namespace

std::unique_ptr<SemanticChannel> makeVectorChannel(const body::BodyModel& model,
                                                   const VectorChannelOptions& options) {
    return std::make_unique<VectorChannel>(model, options);
}

}  // namespace semholo::core
