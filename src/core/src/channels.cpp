#include "semholo/core/channel.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "semholo/compress/codec2.hpp"
#include "semholo/compress/meshcodec.hpp"
#include "semholo/gaze/foveation.hpp"
#include "semholo/recon/keypoint_recon.hpp"
#include "semholo/textsem/delta.hpp"

namespace semholo::core {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// Surface the sparse-reconstruction work accounting through the decoded
// frame so the session engines can aggregate it into telemetry.
void copyReconStats(const recon::ReconstructionResult& result, DecodedFrame& out) {
    out.reconBlocksSkipped = result.stats.blocksSkipped;
    out.reconBlocksCached = result.stats.blocksCached;
    out.reconBonesPruned = result.stats.bonesPruned;
    out.reconNodesEvaluated = result.stats.nodesEvaluated;
    out.reconCertTests = result.stats.certTests;
    out.reconActiveCells = result.stats.activeCells;
    out.reconReusedTopologyBlocks = result.stats.reusedTopologyBlocks;
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t getU32(std::span<const std::uint8_t> in, std::size_t& pos) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
    return v;
}

// Raw (uncompressed) mesh wire format for the "traditional w/o
// compression" row of Table 2: header + positions + indices.
std::vector<std::uint8_t> serializeRawMesh(const mesh::TriMesh& m) {
    std::vector<std::uint8_t> out;
    putU32(out, static_cast<std::uint32_t>(m.vertexCount()));
    putU32(out, static_cast<std::uint32_t>(m.triangleCount()));
    const auto* vbytes = reinterpret_cast<const std::uint8_t*>(m.vertices.data());
    out.insert(out.end(), vbytes, vbytes + m.vertices.size() * sizeof(geom::Vec3f));
    const auto* tbytes = reinterpret_cast<const std::uint8_t*>(m.triangles.data());
    out.insert(out.end(), tbytes, tbytes + m.triangles.size() * sizeof(mesh::Triangle));
    return out;
}

bool deserializeRawMesh(std::span<const std::uint8_t> data, mesh::TriMesh& out) {
    std::size_t pos = 0;
    if (data.size() < 8) return false;
    const std::uint32_t nv = getU32(data, pos);
    const std::uint32_t nt = getU32(data, pos);
    const std::size_t need =
        8 + static_cast<std::size_t>(nv) * sizeof(geom::Vec3f) +
        static_cast<std::size_t>(nt) * sizeof(mesh::Triangle);
    if (data.size() != need) return false;
    out.vertices.resize(nv);
    std::memcpy(out.vertices.data(), data.data() + pos, nv * sizeof(geom::Vec3f));
    pos += nv * sizeof(geom::Vec3f);
    out.triangles.resize(nt);
    std::memcpy(out.triangles.data(), data.data() + pos, nt * sizeof(mesh::Triangle));
    for (const mesh::Triangle& t : out.triangles)
        if (t.a >= nv || t.b >= nv || t.c >= nv) return false;
    return true;
}

class TraditionalChannel final : public SemanticChannel {
public:
    explicit TraditionalChannel(const TraditionalOptions& options)
        : options_(options) {}

    std::string name() const override {
        return options_.compress ? "traditional+draco" : "traditional";
    }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        mesh::TriMesh m = frame.groundTruth();
        if (!options_.withColors) m.colors.clear();
        if (options_.compress) {
            compress::MeshCodecOptions codec;
            codec.encodeColors = options_.withColors;
            out.data = compress::encodeMesh(m, codec);
        } else {
            out.data = serializeRawMesh(m);
        }
        out.measuredExtractMs = msSince(t0);
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        if (options_.compress) {
            auto m = compress::decodeMesh(encoded.data);
            if (m) {
                out.mesh = std::move(*m);
                out.valid = true;
            }
        } else {
            out.valid = deserializeRawMesh(encoded.data, out.mesh);
            if (out.valid) out.mesh.computeVertexNormals();
        }
        out.measuredReconMs = msSince(t0);
        return out;
    }

private:
    TraditionalOptions options_;
};

class KeypointChannel final : public SemanticChannel {
public:
    explicit KeypointChannel(const KeypointChannelOptions& options)
        : options_(options) {}

    std::string name() const override { return "keypoint"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        const auto payload = body::serializePose(frame.pose);
        out.data = options_.compressPayload
                       ? compress::codec2Encode(payload, options_.codec)
                       : payload;
        out.measuredExtractMs = msSince(t0);
        out.simulatedExtractMs = options_.simulatedDetectMs;
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        std::optional<body::Pose> pose;
        if (options_.compressPayload) {
            const auto payload = compress::codec2Decode(encoded.data);
            if (payload) pose = body::deserializePose(*payload);
        } else {
            pose = body::deserializePose(encoded.data);
        }
        if (!pose) {
            out.measuredReconMs = msSince(t0);
            return out;
        }
        recon::ReconstructionOptions ro;
        ro.resolution = options_.reconResolution;
        ro.shape = options_.shape;
        ro.device = recon::DeviceProfile::host();
        auto result = recon::reconstructFromPose(*pose, ro);
        out.valid = result.success;
        out.mesh = std::move(result.mesh);
        copyReconStats(result, out);
        out.measuredReconMs = msSince(t0);
        return out;
    }

private:
    KeypointChannelOptions options_;
};

class TextChannel final : public SemanticChannel {
public:
    explicit TextChannel(const TextChannelOptions& options)
        : options_(options),
          encoder_(options.caption),
          decoder_(options.caption, options.shape) {}

    std::string name() const override { return "text"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        const auto packet = encoder_.encode(frame.pose);
        // Wire: frameId | flags | mask | payload.
        putU32(out.data, packet.frameId);
        out.data.push_back(packet.keyframe ? 1 : 0);
        out.data.push_back(packet.globalPresent ? 1 : 0);
        putU32(out.data, packet.channelMask);
        out.data.insert(out.data.end(), packet.payload.begin(), packet.payload.end());
        out.measuredExtractMs = msSince(t0);
        out.simulatedExtractMs =
            textsem::captionCostMs(packet.cellsEncoded(), options_.cost);
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        if (encoded.data.size() < 10) return out;
        const auto t0 = std::chrono::steady_clock::now();
        std::size_t pos = 0;
        textsem::DeltaPacket packet;
        packet.frameId = getU32(encoded.data, pos);
        packet.keyframe = encoded.data[pos++] != 0;
        packet.globalPresent = encoded.data[pos++] != 0;
        packet.channelMask = getU32(encoded.data, pos);
        packet.payload.assign(encoded.data.begin() + static_cast<std::ptrdiff_t>(pos),
                              encoded.data.end());
        const auto pose = decoder_.decode(packet);
        if (pose) {
            if (options_.reconstructMesh) {
                recon::ReconstructionOptions ro;
                ro.resolution = options_.reconResolution;
                ro.shape = options_.shape;
                ro.device = recon::DeviceProfile::host();
                auto result = recon::reconstructFromPose(*pose, ro);
                out.valid = result.success;
                out.mesh = std::move(result.mesh);
                copyReconStats(result, out);
            } else {
                out.valid = true;
            }
        }
        out.measuredReconMs = msSince(t0);
        out.simulatedReconMs =
            textsem::reconCostMs(packet.cellsEncoded(), options_.cost);
        return out;
    }

    void reset() override {
        encoder_.reset();
        decoder_.reset();
    }

private:
    TextChannelOptions options_;
    textsem::DeltaEncoder encoder_;
    textsem::DeltaDecoder decoder_;
};

class FoveatedChannel final : public SemanticChannel {
public:
    explicit FoveatedChannel(const FoveatedOptions& options) : options_(options) {}

    std::string name() const override { return "foveated-hybrid"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        const auto t0 = std::chrono::steady_clock::now();

        // Foveal region: full-quality mesh around the viewer's gaze.
        // During a saccade, saccadic omission applies: vision is
        // suppressed, so the foveal stream shrinks to half radius and is
        // re-aimed at the *predicted landing position* — prefetching the
        // region the eye is about to land on (section 3.1).
        const bool suppressed = options_.saccadicOmission &&
                                frame.viewerGazeState ==
                                    gaze::EyeMovement::Saccade;
        const gaze::Vec2f aimDeg =
            suppressed ? frame.viewerPredictedLandingDeg : frame.viewerGazeDeg;

        const mesh::TriMesh gt = frame.groundTruth();
        std::vector<std::uint8_t> fovealBytes;
        {
            const geom::Ray gaze = gaze::gazeRay(frame.viewerHead, aimDeg);
            gaze::FoveationConfig fc;
            fc.fovealRadiusDeg =
                suppressed ? options_.fovealRadiusDeg * 0.5 : options_.fovealRadiusDeg;
            const auto partition = gaze::partitionMesh(gt, gaze, fc);
            const mesh::TriMesh foveal = gaze::extractFovealMesh(gt, partition);
            if (!foveal.empty()) {
                compress::MeshCodecOptions codec;
                codec.encodeColors = gt.hasColors();
                fovealBytes = compress::encodeMesh(foveal, codec);
            }
        }
        // Peripheral: the 1.91 KB pose payload.
        auto poseBytes = body::serializePose(frame.pose);
        if (options_.compress)
            poseBytes = compress::codec2Encode(poseBytes, options_.codec);

        putU32(out.data, static_cast<std::uint32_t>(fovealBytes.size()));
        out.data.insert(out.data.end(), fovealBytes.begin(), fovealBytes.end());
        out.data.insert(out.data.end(), poseBytes.begin(), poseBytes.end());
        out.measuredExtractMs = msSince(t0);
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        if (encoded.data.size() < 4) return out;
        const auto t0 = std::chrono::steady_clock::now();
        std::size_t pos = 0;
        const std::uint32_t fovealLen = getU32(encoded.data, pos);
        if (pos + fovealLen > encoded.data.size()) return out;
        const std::span<const std::uint8_t> fovealSpan(encoded.data.data() + pos,
                                                       fovealLen);
        const std::span<const std::uint8_t> poseSpan(
            encoded.data.data() + pos + fovealLen,
            encoded.data.size() - pos - fovealLen);

        std::optional<body::Pose> pose;
        if (options_.compress) {
            const auto payload = compress::codec2Decode(poseSpan);
            if (payload) pose = body::deserializePose(*payload);
        } else {
            pose = body::deserializePose(poseSpan);
        }
        if (!pose) return out;

        // Peripheral reconstruction at reduced resolution (the paper's
        // "keypoints for only peripheral regions").
        recon::ReconstructionOptions ro;
        ro.resolution = options_.peripheralResolution;
        ro.shape = options_.shape;
        ro.device = recon::DeviceProfile::host();
        auto peripheral = recon::reconstructFromPose(*pose, ro);
        if (!peripheral.success) return out;
        out.mesh = std::move(peripheral.mesh);
        copyReconStats(peripheral, out);

        // Graft the full-quality foveal mesh (seam blending is the open
        // challenge the paper notes; we overlay).
        if (fovealLen > 0) {
            auto foveal = compress::decodeMesh(fovealSpan);
            if (!foveal) return out;
            out.mesh.append(*foveal);
        }
        out.valid = true;
        out.measuredReconMs = msSince(t0);
        return out;
    }

private:
    FoveatedOptions options_;
};

// Synthetic cost-model channel: deterministic payload, configurable
// simulated stage costs, no geometry. The payload is a repeating pattern
// seeded by the frame id so byte-identity tests compare real content.
class SyntheticChannel final : public SemanticChannel {
public:
    explicit SyntheticChannel(const SyntheticChannelOptions& options)
        : options_(options) {}

    std::string name() const override { return "synthetic"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;
        std::size_t bytes = options_.payloadBytes;
        if (options_.rateAdaptive && frame.estimatedBandwidthBps > 0.0 &&
            options_.fps > 0.0) {
            const auto budget = static_cast<std::size_t>(
                frame.estimatedBandwidthBps / 8.0 / options_.fps);
            bytes = std::min(bytes, budget);
        }
        bytes = std::max(bytes, options_.minBytes);
        out.data.resize(bytes);
        for (std::size_t i = 0; i < bytes; ++i)
            out.data[i] = static_cast<std::uint8_t>(
                (out.frameId * 131u + static_cast<std::uint32_t>(i)) & 0xFF);
        out.simulatedExtractMs = options_.simulatedExtractMs;
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        out.valid = !encoded.data.empty();
        out.simulatedReconMs = options_.simulatedReconMs;
        return out;
    }

private:
    SyntheticChannelOptions options_;
};

}  // namespace

mesh::TriMesh FrameContext::groundTruth() const {
    return model != nullptr ? model->deform(pose) : mesh::TriMesh{};
}

std::unique_ptr<SemanticChannel> makeTraditionalChannel(
    const TraditionalOptions& options) {
    return std::make_unique<TraditionalChannel>(options);
}

std::unique_ptr<SemanticChannel> makeKeypointChannel(
    const KeypointChannelOptions& options) {
    return std::make_unique<KeypointChannel>(options);
}

std::unique_ptr<SemanticChannel> makeTextChannel(const TextChannelOptions& options) {
    return std::make_unique<TextChannel>(options);
}

std::unique_ptr<SemanticChannel> makeFoveatedChannel(const FoveatedOptions& options) {
    return std::make_unique<FoveatedChannel>(options);
}

std::unique_ptr<SemanticChannel> makeSyntheticChannel(
    const SyntheticChannelOptions& options) {
    return std::make_unique<SyntheticChannel>(options);
}

}  // namespace semholo::core
