// Shared internals of the serial and parallel session engines: pipeline
// clock helpers, stat aggregation, and the link telemetry observer. Not
// installed — both engines must aggregate identically so the parallel
// engine can be validated bit-for-bit against the serial one.
#pragma once

#include "semholo/core/conference.hpp"
#include "semholo/core/session.hpp"

namespace semholo::core {
class ThreadPool;
}

namespace semholo::core::internal {

// Stage cost that advances the availability clocks (extractor/recon
// busy-until, link send times) under the configured timing model.
inline double clockExtractMs(const EncodedFrame& encoded, TimingModel timing) {
    return timing == TimingModel::Measured ? encoded.extractMs()
                                           : encoded.simulatedExtractMs;
}

inline double clockReconMs(const DecodedFrame& decoded, TimingModel timing) {
    return timing == TimingModel::Measured ? decoded.reconMs()
                                           : decoded.simulatedReconMs;
}

// config.workers with 0 resolved to hardware concurrency.
std::size_t effectiveWorkers(const SessionConfig& config);

// Copy a decoded frame's reconstruction work accounting into the frame
// stats (both engines call this so aggregation stays identical).
inline void copyReconCounters(FrameStats& frame, const DecodedFrame& decoded) {
    frame.reconBlocksSkipped = decoded.reconBlocksSkipped;
    frame.reconBlocksCached = decoded.reconBlocksCached;
    frame.reconBonesPruned = decoded.reconBonesPruned;
    frame.reconNodesEvaluated = decoded.reconNodesEvaluated;
    frame.reconCertTests = decoded.reconCertTests;
    frame.reconActiveCells = decoded.reconActiveCells;
    frame.reconReusedTopologyBlocks = decoded.reconReusedTopologyBlocks;
}

// Compute every frame-derived aggregate of 'stats' (means, percentiles,
// drop counts, achievable FPS, Chamfer mean) and fill the per-stage
// telemetry histograms/counters from stats.frames. Link-level counters
// (packets, retransmissions, queue depth) are recorded separately by the
// observer attached via observeLink.
void finalizeSessionStats(SessionStats& stats, const SessionConfig& config);

// Per-user finalize + aggregate rollup (bandwidth, mean e2e, merged
// telemetry). out.telemetry may already hold the shared link's counters.
void finalizeMultiSessionStats(MultiSessionStats& out, const SessionConfig& config);

// Record packet/loss/retransmission/queue-drop counters and queue-depth
// samples of every message 'link' carries into 't'. The link is a
// sequenced single-thread stage; 't' must outlive the link's use.
void observeLink(net::LinkSimulator& link, telemetry::SessionTelemetry& t);

// One frame's Chamfer evaluation vs the LBS ground truth (fills
// frame.chamfer / frame.qualityMs). Deterministic given its inputs, so
// both engines produce identical quality numbers.
void evaluateQuality(FrameStats& frame, const body::BodyModel& model,
                     const body::Pose& pose, const mesh::TriMesh& decodedMesh,
                     std::size_t samples);

// Serial engine (the workers == 1 path), defined in session.cpp.
SessionStats runSessionSerial(SemanticChannel& channel,
                              const body::BodyModel& model,
                              const SessionConfig& config);

// Parallel engine, defined in parallel_session.cpp.
SessionStats runSessionParallel(SemanticChannel& channel,
                                const body::BodyModel& model,
                                const SessionConfig& config, std::size_t workers);

// The one conference implementation (multiuser_session.cpp): an
// event-driven stage graph — per (tick, user) nodes for arbiter targets,
// encode, sequenced uplink entry (a per-link ticket chain preserving the
// (frame, user) order), downlink fan-out, decode and tick retirement,
// with explicit dependency edges. pool == nullptr executes the graph in
// insertion order (the legacy per-tick phase schedule); otherwise nodes
// run the moment their dependencies complete, pipelining up to
// ConferenceConfig::pipelineDepth ticks. Both executors touch every
// mutable resource in the same per-resource order, so runs are
// byte-identical under TimingModel::Simulated at any worker count.
// 'channels' are externally owned, one per conf.participants entry
// (built by runConference from the descriptors, or supplied verbatim by
// the deprecated runMultiUserSession shim).
MultiSessionStats runConferenceTicked(
    const ConferenceConfig& conf, const std::vector<SemanticChannel*>& channels,
    const body::BodyModel& model, ThreadPool* pool);

// Dispatch wrapper: resolves conf.session.workers and runs
// runConferenceTicked inline or over a ThreadPool (conference.cpp).
MultiSessionStats runConferenceWithChannels(
    const ConferenceConfig& conf, const std::vector<SemanticChannel*>& channels,
    const body::BodyModel& model);

}  // namespace semholo::core::internal
