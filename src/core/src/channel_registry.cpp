// Data-driven channel registry: maps ChannelSpec{kind, params} onto the
// typed option structs and factories. Each entry declares the numeric
// params it accepts; unknown kinds and unknown params throw so sweeps
// fail loudly on typos instead of silently running defaults.
#include <algorithm>
#include <functional>
#include <set>
#include <stdexcept>

#include "semholo/core/channel.hpp"

namespace semholo::core {

namespace {

// Tracks which spec params a builder consumed so leftovers can be
// reported as errors.
class ParamReader {
public:
    explicit ParamReader(const ChannelSpec& spec) : spec_(spec) {}

    double get(const std::string& key, double fallback) {
        used_.insert(key);
        const auto it = spec_.params.find(key);
        return it == spec_.params.end() ? fallback : it->second;
    }
    int getInt(const std::string& key, int fallback) {
        return static_cast<int>(get(key, fallback));
    }
    bool getBool(const std::string& key, bool fallback) {
        return get(key, fallback ? 1.0 : 0.0) != 0.0;
    }
    std::size_t getSize(const std::string& key, std::size_t fallback) {
        return static_cast<std::size_t>(get(key, static_cast<double>(fallback)));
    }

    void finish() const {
        for (const auto& [key, value] : spec_.params) {
            (void)value;
            if (used_.count(key) == 0)
                throw std::invalid_argument(
                    "makeChannel: unknown param '" + key + "' for kind '" +
                    spec_.kind + "'");
        }
    }

private:
    const ChannelSpec& spec_;
    std::set<std::string> used_;
};

struct RegistryEntry {
    std::vector<std::string> params;
    bool needsModel{false};
    std::function<std::unique_ptr<SemanticChannel>(ParamReader&,
                                                   const body::BodyModel*)>
        build;
};

// Sorted map => listChannelKinds() is stable and sorted.
const std::map<std::string, RegistryEntry>& registry() {
    static const std::map<std::string, RegistryEntry> entries = [] {
        std::map<std::string, RegistryEntry> r;
        r["traditional"] = {
            {"compress", "withColors"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                TraditionalOptions o;
                o.compress = p.getBool("compress", o.compress);
                o.withColors = p.getBool("withColors", o.withColors);
                return makeTraditionalChannel(o);
            }};
        r["keypoint"] = {
            {"reconResolution", "compressPayload", "simulatedDetectMs"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                KeypointChannelOptions o;
                o.reconResolution = p.getInt("reconResolution", o.reconResolution);
                o.compressPayload = p.getBool("compressPayload", o.compressPayload);
                o.simulatedDetectMs =
                    p.get("simulatedDetectMs", o.simulatedDetectMs);
                return makeKeypointChannel(o);
            }};
        r["text"] = {
            {"reconResolution", "reconstructMesh"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                TextChannelOptions o;
                o.reconResolution = p.getInt("reconResolution", o.reconResolution);
                o.reconstructMesh = p.getBool("reconstructMesh", o.reconstructMesh);
                return makeTextChannel(o);
            }};
        r["image"] = {
            {"viewCount", "imageWidth", "imageHeight", "nerfWidthFraction",
             "pretrainSteps", "fineTuneSteps", "cameraRadius", "fovY", "seed"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                ImageChannelOptions o;
                o.viewCount = p.getInt("viewCount", o.viewCount);
                o.imageWidth = p.getInt("imageWidth", o.imageWidth);
                o.imageHeight = p.getInt("imageHeight", o.imageHeight);
                o.nerfWidthFraction = static_cast<float>(
                    p.get("nerfWidthFraction", o.nerfWidthFraction));
                o.pretrainSteps = p.getInt("pretrainSteps", o.pretrainSteps);
                o.fineTuneSteps = p.getInt("fineTuneSteps", o.fineTuneSteps);
                o.cameraRadius =
                    static_cast<float>(p.get("cameraRadius", o.cameraRadius));
                o.fovY = static_cast<float>(p.get("fovY", o.fovY));
                o.seed = static_cast<std::uint64_t>(
                    p.get("seed", static_cast<double>(o.seed)));
                return makeImageChannel(o);
            }};
        r["foveated"] = {
            {"fovealRadiusDeg", "peripheralResolution", "compress",
             "saccadicOmission"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                FoveatedOptions o;
                o.fovealRadiusDeg = p.get("fovealRadiusDeg", o.fovealRadiusDeg);
                o.peripheralResolution =
                    p.getInt("peripheralResolution", o.peripheralResolution);
                o.compress = p.getBool("compress", o.compress);
                o.saccadicOmission =
                    p.getBool("saccadicOmission", o.saccadicOmission);
                return makeFoveatedChannel(o);
            }};
        r["adaptive-mesh"] = {
            {"fps", "safety"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                AdaptiveMeshOptions o;
                o.fps = p.get("fps", o.fps);
                o.safety = p.get("safety", o.safety);
                return makeAdaptiveMeshChannel(o);
            }};
        r["synthetic"] = {
            {"payloadBytes", "simulatedExtractMs", "simulatedReconMs",
             "rateAdaptive", "fps", "minBytes"},
            false,
            [](ParamReader& p, const body::BodyModel*) {
                SyntheticChannelOptions o;
                o.payloadBytes = p.getSize("payloadBytes", o.payloadBytes);
                o.simulatedExtractMs =
                    p.get("simulatedExtractMs", o.simulatedExtractMs);
                o.simulatedReconMs =
                    p.get("simulatedReconMs", o.simulatedReconMs);
                o.rateAdaptive = p.getBool("rateAdaptive", o.rateAdaptive);
                o.fps = p.get("fps", o.fps);
                o.minBytes = p.getSize("minBytes", o.minBytes);
                return makeSyntheticChannel(o);
            }};
        r["vector"] = {
            {"latentDim", "trainingFrames", "trainingSeed"},
            true,
            [](ParamReader& p, const body::BodyModel* model) {
                VectorChannelOptions o;
                o.latentDim = p.getInt("latentDim", o.latentDim);
                o.trainingFrames = p.getSize("trainingFrames", o.trainingFrames);
                o.trainingSeed = static_cast<std::uint32_t>(
                    p.get("trainingSeed", o.trainingSeed));
                return makeVectorChannel(*model, o);
            }};
        return r;
    }();
    return entries;
}

const RegistryEntry& entryFor(const std::string& kind) {
    const auto& r = registry();
    const auto it = r.find(kind);
    if (it == r.end()) {
        std::string known;
        for (const auto& [name, entry] : r) {
            (void)entry;
            known += known.empty() ? name : ", " + name;
        }
        throw std::invalid_argument("makeChannel: unknown channel kind '" + kind +
                                    "' (known: " + known + ")");
    }
    return it->second;
}

}  // namespace

std::vector<std::string> listChannelKinds() {
    std::vector<std::string> kinds;
    for (const auto& [name, entry] : registry()) {
        (void)entry;
        kinds.push_back(name);
    }
    return kinds;
}

std::vector<std::string> listChannelParams(const std::string& kind) {
    return entryFor(kind).params;
}

std::unique_ptr<SemanticChannel> makeChannel(const ChannelSpec& spec,
                                             const body::BodyModel* model) {
    const RegistryEntry& entry = entryFor(spec.kind);
    if (entry.needsModel && model == nullptr)
        throw std::invalid_argument("makeChannel: kind '" + spec.kind +
                                    "' requires a body model");
    ParamReader reader(spec);
    auto channel = entry.build(reader, model);
    reader.finish();
    return channel;
}

}  // namespace semholo::core
