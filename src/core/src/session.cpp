#include "semholo/core/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/net/abr.hpp"
#include "session_internal.hpp"

namespace semholo::core {

namespace internal {

std::size_t effectiveWorkers(const SessionConfig& config) {
    return config.workers == 0 ? ThreadPool::defaultWorkers() : config.workers;
}

void observeLink(net::LinkSimulator& link, telemetry::SessionTelemetry& t) {
    link.setObserver([&t](const net::TransferResult& r, std::size_t queuedBytes) {
        t.counters.packets += r.packets;
        t.counters.packetsLost += r.lostPackets;
        t.counters.packetsDelivered += r.deliveredPackets;
        t.counters.packetsUnrecovered += r.unrecoveredPackets;
        t.counters.retransmissions += r.retransmissions;
        t.counters.queueDrops += r.droppedAtQueue;
        t.counters.bytesSent += r.bytes;
        t.counters.faultEvents += r.faultEvents;
        t.queueDepthBytes.record(static_cast<double>(queuedBytes));
    });
}

void finalizeSessionStats(SessionStats& stats, const SessionConfig& config) {
    // Aggregate over processed (non-dropped) frames; byte/time means are
    // over frames that actually ran the stage in question.
    double sumBytes = 0.0, sumExtract = 0.0, sumTransfer = 0.0, sumRecon = 0.0,
           sumE2e = 0.0, sumStage = 0.0, sumChamfer = 0.0;
    std::size_t sent = 0, reconCount = 0, evaluated = 0;
    std::vector<double> e2es;
    telemetry::SessionTelemetry& t = stats.telemetry;
    t.counters.framesCaptured += stats.frames.size();
    for (const FrameStats& frame : stats.frames) {
        if (frame.droppedAtSender) {
            ++stats.droppedSenderFrames;
            ++t.counters.dropsAtSender;
            continue;
        }
        sumBytes += static_cast<double>(frame.bytes);
        sumExtract += frame.extractMs;
        sumTransfer += frame.transferMs;
        t.encodeMs.record(frame.extractMs);
        t.transferMs.record(frame.transferMs);
        t.bytesPerFrame.record(static_cast<double>(frame.bytes));
        ++sent;
        if (frame.droppedAtReceiver) {
            ++stats.droppedReceiverFrames;
            ++t.counters.dropsAtReceiver;
            continue;
        }
        if (frame.delivered) {
            ++stats.deliveredFrames;
            ++t.counters.framesDelivered;
            sumE2e += frame.e2eMs;
            e2es.push_back(frame.e2eMs);
            t.e2eMs.record(frame.e2eMs);
        }
        if (frame.decoded) {
            ++stats.decodedFrames;
            ++t.counters.framesDecoded;
            sumRecon += frame.reconMs;
            t.decodeMs.record(frame.reconMs);
            t.counters.reconBlocksSkipped += frame.reconBlocksSkipped;
            t.counters.reconBlocksCached += frame.reconBlocksCached;
            t.counters.reconBonesPruned += frame.reconBonesPruned;
            t.counters.reconNodesEvaluated += frame.reconNodesEvaluated;
            t.counters.reconCertTests += frame.reconCertTests;
            t.counters.reconActiveCells += frame.reconActiveCells;
            t.counters.reconReusedTopologyBlocks += frame.reconReusedTopologyBlocks;
            ++reconCount;
        }
        sumStage += std::max(frame.extractMs, frame.reconMs);
        if (!std::isnan(frame.chamfer)) {
            sumChamfer += frame.chamfer;
            t.qualityMs.record(frame.qualityMs);
            ++evaluated;
        }
    }
    if (sent > 0) {
        stats.meanBytesPerFrame = sumBytes / static_cast<double>(sent);
        stats.meanExtractMs = sumExtract / static_cast<double>(sent);
        stats.meanTransferMs = sumTransfer / static_cast<double>(sent);
        // Effective bandwidth: bytes actually sent over the session span.
        // Guard the degenerate zero-span session (frames == 0 or fps
        // <= 0) so the contract stays "0, never a division by zero".
        const double spanS = config.fps > 0.0
                                 ? static_cast<double>(config.frames) / config.fps
                                 : 0.0;
        stats.bandwidthMbps = spanS > 0.0 ? sumBytes * 8.0 / spanS / 1e6 : 0.0;
    }
    if (reconCount > 0) {
        stats.meanReconMs = sumRecon / static_cast<double>(reconCount);
        const double meanStage = sumStage / static_cast<double>(reconCount);
        stats.achievableFps = meanStage > 0.0 ? 1000.0 / meanStage : config.fps;
    }
    if (stats.deliveredFrames > 0) {
        stats.meanE2eMs = sumE2e / static_cast<double>(stats.deliveredFrames);
        std::sort(e2es.begin(), e2es.end());
        stats.p95E2eMs = e2es[static_cast<std::size_t>(
            0.95 * static_cast<double>(e2es.size() - 1))];
    }
    if (evaluated > 0) stats.meanChamfer = sumChamfer / static_cast<double>(evaluated);
}

void finalizeMultiSessionStats(MultiSessionStats& out, const SessionConfig& config) {
    double totalBytes = 0.0, totalE2e = 0.0;
    std::size_t e2eCount = 0;
    const double spanS = config.fps > 0.0
                             ? static_cast<double>(config.frames) / config.fps
                             : 0.0;
    for (SessionStats& s : out.perUser) {
        finalizeSessionStats(s, config);
        for (const FrameStats& frame : s.frames) {
            if (frame.droppedAtSender) continue;
            totalBytes += static_cast<double>(frame.bytes);
            if (!frame.droppedAtReceiver && frame.delivered) {
                totalE2e += frame.e2eMs;
                ++e2eCount;
            }
        }
        out.telemetry.merge(s.telemetry);
    }
    out.aggregateMbps = spanS > 0.0 ? totalBytes * 8.0 / spanS / 1e6 : 0.0;
    if (e2eCount > 0) out.meanE2eMs = totalE2e / static_cast<double>(e2eCount);
}

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

// Evaluate decoded-mesh quality against the LBS ground truth for one
// frame; shared by both engines (the parallel engine runs it inside
// pool tasks). Deterministic given the pose/mesh/samples.
void evaluateQuality(FrameStats& frame, const body::BodyModel& model,
                     const body::Pose& pose, const mesh::TriMesh& decodedMesh,
                     std::size_t samples) {
    const auto t0 = std::chrono::steady_clock::now();
    const mesh::TriMesh gt = model.deform(pose);
    frame.chamfer = mesh::compareMeshes(gt, decodedMesh, samples).chamfer;
    frame.qualityMs = msSince(t0);
}

SessionStats runSessionSerial(SemanticChannel& channel,
                              const body::BodyModel& model,
                              const SessionConfig& config) {
    SessionStats stats;
    channel.reset();
    net::LinkSimulator link(config.link);
    observeLink(link, stats.telemetry);
    const body::MotionGenerator motion(config.motion, model.shape(),
                                       config.motionSeed);

    // Sender extractor and receiver reconstructor are sequential pipeline
    // stages with their own availability clocks.
    double extractorFreeAt = 0.0;
    double reconFreeAt = 0.0;
    // Receiver throughput feedback loop for rate-adaptive channels, and
    // the closed-loop degradation policy that scales it under faults.
    net::HarmonicEstimator throughput(5);
    DegradationPolicy degrade(config.degradation, config.fps,
                              config.link.queueCapacityBytes);

    for (std::size_t f = 0; f < config.frames; ++f) {
        const double captureTime = static_cast<double>(f) / config.fps;
        FrameContext ctx;
        ctx.pose = motion.poseAt(captureTime);
        ctx.pose.frameId = static_cast<std::uint32_t>(f);
        ctx.model = &model;
        ctx.timestamp = captureTime;
        ctx.viewerHead = config.viewerHead;
        if (throughput.hasEstimate())
            ctx.estimatedBandwidthBps =
                throughput.estimate() * degrade.bandwidthScale();

        FrameStats frame;
        frame.frameId = ctx.pose.frameId;

        if (config.dropWhenBusy && extractorFreeAt > captureTime) {
            frame.droppedAtSender = true;
            stats.frames.push_back(std::move(frame));
            continue;
        }

        const EncodedFrame encoded = channel.encode(ctx);
        frame.bytes = encoded.bytes();
        frame.extractMs = encoded.extractMs();
        const double extractStart = std::max(captureTime, extractorFreeAt);
        const double sendTime =
            extractStart + internal::clockExtractMs(encoded, config.timing) / 1000.0;
        extractorFreeAt = sendTime;

        const std::size_t queuedAtSend =
            config.degradation.enabled ? link.queuedBytesAt(sendTime) : 0;
        const auto transfer =
            link.sendMessage(encoded.bytes(), sendTime, config.transfer);
        frame.delivered = transfer.delivered;
        frame.transferMs = transfer.durationS() * 1000.0;
        if (transfer.delivered && encoded.bytes() > 0) {
            // Serialization-dominated throughput sample (propagation
            // subtracted) so small payloads do not bias the estimate low.
            const double serialS = std::max(
                1e-5, transfer.durationS() - config.link.propagationDelayS);
            throughput.addSample(static_cast<double>(encoded.bytes()) * 8.0 /
                                 serialS);
        }
        if (config.degradation.enabled) {
            const DegradationAction action = degrade.observe(
                frame.frameId,
                {transfer.delivered, transfer.durationS(),
                 transfer.unrecoveredPackets, transfer.droppedAtQueue,
                 transfer.faultEvents, queuedAtSend});
            if (action == DegradationAction::StepDown)
                ++stats.telemetry.counters.degradations;
            else if (action == DegradationAction::StepUp)
                ++stats.telemetry.counters.upgrades;
        }

        if (transfer.delivered) {
            const double arrival = transfer.completionTime;
            if (config.dropWhenBusy && reconFreeAt > arrival) {
                frame.droppedAtReceiver = true;
                stats.frames.push_back(std::move(frame));
                continue;
            }
            DecodedFrame decoded = channel.decode(encoded);
            frame.decoded = decoded.valid;
            frame.reconMs = decoded.reconMs();
            internal::copyReconCounters(frame, decoded);
            const double reconStart = std::max(arrival, reconFreeAt);
            const double renderTime =
                reconStart + internal::clockReconMs(decoded, config.timing) / 1000.0;
            reconFreeAt = renderTime;
            frame.e2eMs = (renderTime - captureTime) * 1000.0;
            if (decoded.valid && config.qualityEvalInterval > 0 &&
                f % config.qualityEvalInterval == 0 && !decoded.mesh.empty()) {
                evaluateQuality(frame, model, ctx.pose, decoded.mesh,
                                config.qualitySamples);
            }
        } else {
            frame.e2eMs = (transfer.completionTime - captureTime) * 1000.0;
        }
        stats.frames.push_back(std::move(frame));
    }

    finalizeSessionStats(stats, config);
    return stats;
}

}  // namespace internal

std::size_t MultiSessionStats::usersWithinLatency(double budgetMs) const {
    std::size_t n = 0;
    for (const SessionStats& s : perUser)
        if (s.deliveredFrames > 0 && s.meanE2eMs <= budgetMs) ++n;
    return n;
}

SessionStats runSession(SemanticChannel& channel, const body::BodyModel& model,
                        const SessionConfig& config) {
    const std::size_t workers = internal::effectiveWorkers(config);
    if (workers <= 1) return internal::runSessionSerial(channel, model, config);
    return internal::runSessionParallel(channel, model, config, workers);
}

MultiSessionStats runMultiUserSession(
    const std::vector<SemanticChannel*>& channels, const body::BodyModel& model,
    const SessionConfig& base) {
    // Legacy shim: the conference engine with the pre-SFU topology —
    // shared uplink, no downlink fan-out, no arbiter — which is
    // byte-identical to the old multi-user scheduler.
    ConferenceConfig conf;
    conf.session = base;
    conf.participants.resize(channels.size());
    conf.sharedUplink = true;
    conf.enableDownlinks = false;
    return internal::runConferenceWithChannels(conf, channels, model);
}

}  // namespace semholo::core
