// Discrete-event transfer simulation over a Link: packetisation into
// MTU-sized packets, bottleneck-queue serialisation against the
// time-varying rate, propagation + jitter, loss, and optional ARQ
// retransmission. Deterministic given the link seed.
#pragma once

#include <functional>
#include <optional>

#include "semholo/net/link.hpp"

namespace semholo::net {

inline constexpr std::size_t kMtuBytes = 1400;

struct TransferOptions {
    // Retransmit lost packets (simple ARQ with one RTT penalty per loss).
    bool reliable{true};
    // Give up after this many retransmissions of one packet.
    int maxRetransmissions{8};
};

struct TransferResult {
    bool delivered{false};
    double startTime{0.0};
    double completionTime{0.0};   // when the last byte arrived
    double durationS() const { return completionTime - startTime; }
    std::size_t bytes{0};
    std::size_t packets{0};
    std::size_t lostPackets{0};       // first-transmission losses
    std::size_t retransmissions{0};
    std::size_t droppedAtQueue{0};
    double throughputBps() const {
        const double d = durationS();
        return d > 0.0 ? static_cast<double>(bytes) * 8.0 / d : 0.0;
    }
};

// Simulates one sender-to-receiver path. Transfers are serialised in
// FIFO order through the bottleneck (state persists between sendMessage
// calls, so back-to-back frames queue behind each other as they would on
// a real link).
class LinkSimulator {
public:
    explicit LinkSimulator(const LinkConfig& config = {});

    // Send 'bytes' at 'sendTime' (>= the clock of previous sends).
    // Returns the per-message delivery result.
    TransferResult sendMessage(std::size_t bytes, double sendTime,
                               const TransferOptions& options = {});

    // Time the bottleneck queue drains at (for pacing decisions).
    double queueBusyUntil() const { return busyUntil_; }
    const LinkConfig& config() const { return config_; }

    // Bytes currently modelled as queued if a message were sent at 'time'.
    std::size_t queuedBytesAt(double time) const;

    // Telemetry hook: called after every sendMessage with the message's
    // result and the bottleneck backlog observed at send time. The
    // simulator is a sequenced (single-thread) stage, so the callback is
    // always invoked from the thread driving sendMessage and does not
    // need internal synchronisation.
    using MessageObserver =
        std::function<void(const TransferResult&, std::size_t queuedBytesAtSend)>;
    void setObserver(MessageObserver observer) { observer_ = std::move(observer); }

private:
    TransferResult sendMessageImpl(std::size_t bytes, double sendTime,
                                   const TransferOptions& options);

    LinkConfig config_;
    double busyUntil_{0.0};
    std::uint64_t packetCounter_{0};
    MessageObserver observer_;
};

}  // namespace semholo::net
