// Packet-event transfer simulation over a Link: packetisation into
// MTU-sized packets, a byte-accurate FIFO bottleneck queue whose
// occupancy is checked per packet (so a single oversized message can
// tail-drop mid-message), drain times computed by integrating the
// bandwidth trace and fault schedule across rate steps, propagation +
// mean-preserving jitter, i.i.d. or Gilbert-Elliott burst loss, and
// optional ARQ retransmission where queue drops are re-enqueued after a
// detection delay instead of sailing through for free. Deterministic
// given the link seed.
#pragma once

#include <functional>
#include <optional>

#include "semholo/net/link.hpp"

namespace semholo::net {

inline constexpr std::size_t kMtuBytes = 1400;

struct TransferOptions {
    // Retransmit lost or queue-dropped packets (simple ARQ with one RTT
    // detection delay per attempt).
    bool reliable{true};
    // Give up after this many retransmissions of one packet.
    int maxRetransmissions{8};
};

struct TransferResult {
    bool delivered{false};
    double startTime{0.0};
    double completionTime{0.0};   // when the last byte arrived
    double durationS() const { return completionTime - startTime; }
    std::size_t bytes{0};
    std::size_t packets{0};
    std::size_t deliveredPackets{0};
    // Packets that never reached the receiver: for unreliable transfers
    // every first-transmission loss or queue drop; for reliable ones
    // packets whose retransmission budget ran out (the message aborts,
    // so unsent remainder packets count here too). Conservation:
    // packets == deliveredPackets + unrecoveredPackets.
    std::size_t unrecoveredPackets{0};
    std::size_t lostPackets{0};       // first-transmission losses
    std::size_t retransmissions{0};   // resends after loss or queue drop
    std::size_t droppedAtQueue{0};    // tail-drop events (incl. retried ones)
    // Fault-schedule windows this message newly entered (outages,
    // collapses, Gilbert-Elliott good->bad transitions). Each scheduled
    // window is counted once per simulator lifetime.
    std::size_t faultEvents{0};
    // Caller-supplied message tags, echoed back verbatim (0 when unused).
    // Multi-user session engines tag each message with the sending
    // user's index so the telemetry observer can attribute shared-link
    // packet/queue counters per user; the SFU downlink fan-out
    // additionally tags the receiving viewer, so per-(source, viewer)
    // stream accounting needs no side tables.
    std::uint64_t senderTag{0};
    std::uint64_t receiverTag{0};
    double throughputBps() const {
        const double d = durationS();
        return d > 0.0 ? static_cast<double>(bytes) * 8.0 / d : 0.0;
    }
};

// Simulates one sender-to-receiver path. Transfers are serialised in
// FIFO order through the bottleneck (state persists between sendMessage
// calls, so back-to-back frames queue behind each other as they would on
// a real link). The queue is work-conserving: its exact occupancy at any
// instant is the integral of the effective (trace x fault) drain rate
// from that instant to the time the backlog empties.
class LinkSimulator {
public:
    explicit LinkSimulator(const LinkConfig& config = {});

    // Send 'bytes' at 'sendTime' (>= the clock of previous sends).
    // Returns the per-message delivery result. 'senderTag' and
    // 'receiverTag' are carried through to the TransferResult (and thus
    // the observer) for per-sender / per-viewer attribution on shared
    // uplinks and fanned-out downlinks.
    TransferResult sendMessage(std::size_t bytes, double sendTime,
                               const TransferOptions& options = {},
                               std::uint64_t senderTag = 0,
                               std::uint64_t receiverTag = 0);

    // Time the bottleneck queue drains at (for pacing decisions).
    double queueBusyUntil() const { return busyUntil_; }
    const LinkConfig& config() const { return config_; }

    // Bytes currently modelled as queued if a message were sent at
    // 'time': the effective drain rate integrated over [time, busyUntil)
    // — exact across trace rate steps and fault windows.
    std::size_t queuedBytesAt(double time) const;

    // Bottleneck rate in effect at 'time' (trace rate x fault multiplier).
    double effectiveRateAt(double time) const;

    // Telemetry hook: called after every sendMessage with the message's
    // result and the bottleneck backlog observed at send time. The
    // simulator is a sequenced (single-thread) stage, so the callback is
    // always invoked from the thread driving sendMessage and does not
    // need internal synchronisation.
    using MessageObserver =
        std::function<void(const TransferResult&, std::size_t queuedBytesAtSend)>;
    void setObserver(MessageObserver observer) { observer_ = std::move(observer); }

private:
    TransferResult sendMessageImpl(std::size_t bytes, double sendTime,
                                   const TransferOptions& options);

    // Effective-rate integral over [t0, t1) in bits, stepping across
    // trace sample boundaries and fault window edges.
    double integrateBits(double t0, double t1) const;
    // Earliest t >= from at which 'bits' have drained through the
    // bottleneck (outages stall, collapses stretch the drain).
    double drainDeadline(double from, double bits) const;
    double nextBoundaryAfter(double t) const;
    std::size_t backlogBytes(double at, double until) const;
    // Count scheduled fault windows overlapping [start, end] that no
    // earlier message has touched.
    void noteFaultWindows(double start, double end, TransferResult& result);

    LinkConfig config_;
    double busyUntil_{0.0};
    std::uint64_t packetCounter_{0};
    bool burstStateBad_{false};  // Gilbert-Elliott channel state
    std::vector<bool> outageSeen_;
    std::vector<bool> collapseSeen_;
    MessageObserver observer_;
};

}  // namespace semholo::net
