// Link model for the Internet path between telepresence sites: a
// time-varying bottleneck rate (bandwidth trace), propagation delay,
// deterministic-seeded jitter and random loss, and a FIFO bottleneck
// queue that produces realistic queuing delay when the sender bursts.
#pragma once

#include <cstdint>
#include <vector>

namespace semholo::net {

// Piecewise-constant bandwidth over time, in bits per second.
class BandwidthTrace {
public:
    // Constant rate.
    static BandwidthTrace constant(double bps);
    // Repeating step pattern: 'period' seconds at 'high', then at 'low'.
    static BandwidthTrace square(double highBps, double lowBps, double period);
    // Sinusoidal oscillation between min and max with the given period.
    static BandwidthTrace sine(double minBps, double maxBps, double period,
                               double sampleInterval = 0.1);
    // Seeded bounded random walk (models LTE/WiFi fluctuation).
    static BandwidthTrace randomWalk(double startBps, double minBps, double maxBps,
                                     double stepInterval, double duration,
                                     std::uint64_t seed);
    // Explicit samples at fixed 'interval' spacing, cycled when exhausted.
    BandwidthTrace(std::vector<double> samplesBps, double interval);

    double rateAt(double timeSeconds) const;
    double minRate() const;
    double meanRate() const;

private:
    std::vector<double> samples_;
    double interval_{1.0};
};

struct LinkConfig {
    BandwidthTrace bandwidth = BandwidthTrace::constant(25e6);  // US broadband
    double propagationDelayS{0.02};
    double jitterStddevS{0.002};
    double lossRate{0.0};
    // Bottleneck queue capacity; packets beyond it are dropped (tail drop).
    std::size_t queueCapacityBytes{256 * 1024};
    std::uint64_t seed{1};
};

}  // namespace semholo::net
