// Link model for the Internet path between telepresence sites: a
// time-varying bottleneck rate (bandwidth trace), propagation delay,
// deterministic-seeded jitter and random loss, a FIFO bottleneck queue
// that produces realistic queuing delay when the sender bursts, and a
// fault schedule (outages, bandwidth collapses, Gilbert-Elliott burst
// loss) for robustness experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace semholo::net {

// Piecewise-constant bandwidth over time, in bits per second.
class BandwidthTrace {
public:
    // Constant rate.
    static BandwidthTrace constant(double bps);
    // Repeating step pattern: 'period' seconds at 'high', then at 'low'.
    static BandwidthTrace square(double highBps, double lowBps, double period);
    // Sinusoidal oscillation between min and max with the given period.
    static BandwidthTrace sine(double minBps, double maxBps, double period,
                               double sampleInterval = 0.1);
    // Seeded bounded random walk (models LTE/WiFi fluctuation).
    static BandwidthTrace randomWalk(double startBps, double minBps, double maxBps,
                                     double stepInterval, double duration,
                                     std::uint64_t seed);
    // Explicit samples at fixed 'interval' spacing, cycled when exhausted.
    BandwidthTrace(std::vector<double> samplesBps, double interval);

    double rateAt(double timeSeconds) const;
    double minRate() const;
    double maxRate() const;
    double meanRate() const;
    // Sample spacing: the rate is constant on [k*interval, (k+1)*interval).
    double interval() const { return interval_; }

    // Exact integral of the piecewise-constant rate over [t0, t1), in
    // bits (negative times clamp to 0, matching rateAt).
    double integralBits(double t0, double t1) const;

private:
    std::vector<double> samples_;
    double interval_{1.0};
};

// ---- Fault injection -----------------------------------------------------
//
// Deterministic failure scenarios layered on top of the bandwidth trace.
// Outages zero the bottleneck rate (packets stall in the queue and tail
// drop once it fills); collapses scale it; Gilbert-Elliott burst loss
// replaces the i.i.d. loss model with a two-state Markov chain whose
// transitions are drawn from the same seeded per-message RNG, so runs
// stay reproducible.

struct OutageWindow {
    double startS{0.0};
    double durationS{0.0};
};

struct BandwidthCollapse {
    double startS{0.0};
    double durationS{0.0};
    double factor{0.1};  // bottleneck rate multiplier inside the window
};

struct GilbertElliott {
    bool enabled{false};
    double pGoodToBad{0.01};  // per-packet transition probabilities
    double pBadToGood{0.3};
    double lossGood{0.0};     // packet loss probability in each state
    double lossBad{0.3};
};

struct FaultSchedule {
    std::vector<OutageWindow> outages;
    std::vector<BandwidthCollapse> collapses;
    GilbertElliott burstLoss;

    bool empty() const {
        return outages.empty() && collapses.empty() && !burstLoss.enabled;
    }
    bool inOutage(double t) const;
    // Composite rate multiplier at 't': 0 inside an outage, product of
    // active collapse factors otherwise.
    double rateMultiplier(double t) const;
};

struct LinkConfig {
    BandwidthTrace bandwidth = BandwidthTrace::constant(25e6);  // US broadband
    double propagationDelayS{0.02};
    double jitterStddevS{0.002};
    double lossRate{0.0};
    // Bottleneck queue capacity; packets beyond it are dropped (tail drop).
    std::size_t queueCapacityBytes{256 * 1024};
    FaultSchedule faults{};
    std::uint64_t seed{1};
};

}  // namespace semholo::net
