// Bandwidth estimation and adaptive bitrate control (section 3.2's
// "Reducing Latency with Rate Adaption"): throughput estimators in the
// FESTIVE/Pensieve tradition and two ABR controllers — pure rate-based
// and a buffer-aware hybrid — that pick a level from a quality ladder
// (image resolutions for the NeRF channel, mesh bit depths for the
// traditional channel).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace semholo::net {

// Exponentially weighted moving average of throughput samples (bps).
class EwmaEstimator {
public:
    explicit EwmaEstimator(double alpha = 0.25) : alpha_(alpha) {}
    void addSample(double bps);
    double estimate() const { return value_; }
    bool hasEstimate() const { return initialized_; }

private:
    double alpha_;
    double value_{0.0};
    bool initialized_{false};
};

// Harmonic mean of the last K samples: robust to upward spikes, the
// standard conservative ABR estimator.
class HarmonicEstimator {
public:
    explicit HarmonicEstimator(std::size_t window = 5) : window_(window) {}
    void addSample(double bps);
    double estimate() const;
    bool hasEstimate() const { return !samples_.empty(); }

private:
    std::size_t window_;
    std::deque<double> samples_;
};

struct QualityLevel {
    std::string name;       // e.g. "240p", "512-voxel"
    double bitrateBps{};    // sustained rate this level needs
    double utility{};       // relative quality score (monotone in bitrate)
};

// Rate-based: highest level whose bitrate fits under 'safety' x estimate.
class RateBasedAbr {
public:
    RateBasedAbr(std::vector<QualityLevel> ladder, double safety = 0.9);
    std::size_t chooseLevel(double estimatedBps) const;
    const std::vector<QualityLevel>& ladder() const { return ladder_; }

private:
    std::vector<QualityLevel> ladder_;  // sorted ascending by bitrate
    double safety_;
};

// Buffer-aware hybrid (BOLA-flavoured): rate-based choice, biased up when
// the client buffer is comfortable and clamped down when it is draining.
class BufferAwareAbr {
public:
    BufferAwareAbr(std::vector<QualityLevel> ladder, double targetBufferS = 0.2,
                   double safety = 0.9);
    std::size_t chooseLevel(double estimatedBps, double bufferLevelS) const;
    const std::vector<QualityLevel>& ladder() const { return ladder_; }

private:
    std::vector<QualityLevel> ladder_;
    double targetBufferS_;
    double safety_;
};

}  // namespace semholo::net
