#include "semholo/net/link.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

namespace semholo::net {

BandwidthTrace::BandwidthTrace(std::vector<double> samplesBps, double interval)
    : samples_(std::move(samplesBps)), interval_(interval) {
    if (samples_.empty()) samples_.push_back(1e6);
    if (interval_ <= 0.0) interval_ = 1.0;
}

BandwidthTrace BandwidthTrace::constant(double bps) {
    return BandwidthTrace({bps}, 1.0);
}

BandwidthTrace BandwidthTrace::square(double highBps, double lowBps, double period) {
    return BandwidthTrace({highBps, lowBps}, period);
}

BandwidthTrace BandwidthTrace::sine(double minBps, double maxBps, double period,
                                    double sampleInterval) {
    std::vector<double> samples;
    const auto n = static_cast<std::size_t>(std::max(2.0, period / sampleInterval));
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double phase =
            2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n);
        samples.push_back(minBps + (maxBps - minBps) * 0.5 * (1.0 + std::sin(phase)));
    }
    return BandwidthTrace(std::move(samples), sampleInterval);
}

BandwidthTrace BandwidthTrace::randomWalk(double startBps, double minBps,
                                          double maxBps, double stepInterval,
                                          double duration, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> step(0.0, (maxBps - minBps) * 0.05);
    std::vector<double> samples;
    double rate = startBps;
    for (double t = 0.0; t < duration; t += stepInterval) {
        samples.push_back(rate);
        rate = std::clamp(rate + step(rng), minBps, maxBps);
    }
    if (samples.empty()) samples.push_back(startBps);
    return BandwidthTrace(std::move(samples), stepInterval);
}

double BandwidthTrace::rateAt(double timeSeconds) const {
    if (timeSeconds < 0.0) timeSeconds = 0.0;
    const auto idx =
        static_cast<std::size_t>(timeSeconds / interval_) % samples_.size();
    return samples_[idx];
}

double BandwidthTrace::minRate() const {
    return *std::min_element(samples_.begin(), samples_.end());
}

double BandwidthTrace::maxRate() const {
    return *std::max_element(samples_.begin(), samples_.end());
}

double BandwidthTrace::integralBits(double t0, double t1) const {
    t0 = std::max(t0, 0.0);
    if (t1 <= t0) return 0.0;
    double bits = 0.0;
    double t = t0;
    while (t < t1 - 1e-12) {
        const double boundary =
            (std::floor(t / interval_ + 1e-9) + 1.0) * interval_;
        const double end = std::min(t1, boundary);
        if (end <= t) break;  // FP guard
        bits += rateAt(0.5 * (t + end)) * (end - t);
        t = end;
    }
    return bits;
}

double BandwidthTrace::meanRate() const {
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

bool FaultSchedule::inOutage(double t) const {
    for (const OutageWindow& o : outages)
        if (t >= o.startS && t < o.startS + o.durationS) return true;
    return false;
}

double FaultSchedule::rateMultiplier(double t) const {
    if (inOutage(t)) return 0.0;
    double m = 1.0;
    for (const BandwidthCollapse& c : collapses)
        if (t >= c.startS && t < c.startS + c.durationS)
            m *= std::max(0.0, c.factor);
    return m;
}

}  // namespace semholo::net
