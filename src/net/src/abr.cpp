#include "semholo/net/abr.hpp"

#include <algorithm>

namespace semholo::net {

void EwmaEstimator::addSample(double bps) {
    if (!initialized_) {
        value_ = bps;
        initialized_ = true;
        return;
    }
    value_ = alpha_ * bps + (1.0 - alpha_) * value_;
}

void HarmonicEstimator::addSample(double bps) {
    if (bps <= 0.0) return;
    samples_.push_back(bps);
    while (samples_.size() > window_) samples_.pop_front();
}

double HarmonicEstimator::estimate() const {
    if (samples_.empty()) return 0.0;
    double invSum = 0.0;
    for (const double s : samples_) invSum += 1.0 / s;
    return static_cast<double>(samples_.size()) / invSum;
}

namespace {

std::vector<QualityLevel> sortedLadder(std::vector<QualityLevel> ladder) {
    std::sort(ladder.begin(), ladder.end(),
              [](const QualityLevel& a, const QualityLevel& b) {
                  return a.bitrateBps < b.bitrateBps;
              });
    return ladder;
}

}  // namespace

RateBasedAbr::RateBasedAbr(std::vector<QualityLevel> ladder, double safety)
    : ladder_(sortedLadder(std::move(ladder))), safety_(safety) {}

std::size_t RateBasedAbr::chooseLevel(double estimatedBps) const {
    std::size_t best = 0;
    for (std::size_t i = 0; i < ladder_.size(); ++i)
        if (ladder_[i].bitrateBps <= safety_ * estimatedBps) best = i;
    return best;
}

BufferAwareAbr::BufferAwareAbr(std::vector<QualityLevel> ladder, double targetBufferS,
                               double safety)
    : ladder_(sortedLadder(std::move(ladder))),
      targetBufferS_(targetBufferS),
      safety_(safety) {}

std::size_t BufferAwareAbr::chooseLevel(double estimatedBps,
                                        double bufferLevelS) const {
    // Effective safety margin scales with buffer health: a full buffer
    // tolerates optimism, a draining buffer demands caution.
    const double health =
        targetBufferS_ > 0.0 ? std::clamp(bufferLevelS / targetBufferS_, 0.0, 2.0)
                             : 1.0;
    const double effectiveSafety = safety_ * (0.5 + 0.5 * health);
    std::size_t best = 0;
    for (std::size_t i = 0; i < ladder_.size(); ++i)
        if (ladder_[i].bitrateBps <= effectiveSafety * estimatedBps) best = i;
    // Hard floor: with a critically low buffer, drop a level.
    if (bufferLevelS < 0.25 * targetBufferS_ && best > 0) --best;
    return best;
}

}  // namespace semholo::net
