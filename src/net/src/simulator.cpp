#include "semholo/net/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace semholo::net {

LinkSimulator::LinkSimulator(const LinkConfig& config) : config_(config) {}

std::size_t LinkSimulator::queuedBytesAt(double time) const {
    if (time >= busyUntil_) return 0;
    // Approximate: backlog drains at the current rate.
    const double rate = config_.bandwidth.rateAt(time);
    return static_cast<std::size_t>((busyUntil_ - time) * rate / 8.0);
}

TransferResult LinkSimulator::sendMessage(std::size_t bytes, double sendTime,
                                          const TransferOptions& options) {
    const std::size_t queuedAtSend = queuedBytesAt(sendTime);
    const TransferResult result = sendMessageImpl(bytes, sendTime, options);
    if (observer_) observer_(result, queuedAtSend);
    return result;
}

TransferResult LinkSimulator::sendMessageImpl(std::size_t bytes, double sendTime,
                                              const TransferOptions& options) {
    TransferResult result;
    result.startTime = sendTime;
    result.bytes = bytes;
    if (bytes == 0) {
        result.delivered = true;
        result.completionTime = sendTime + config_.propagationDelayS;
        return result;
    }

    std::mt19937_64 rng(config_.seed ^ (packetCounter_ * 0x9E3779B97F4A7C15ull) ^
                        static_cast<std::uint64_t>(sendTime * 1e6));
    std::normal_distribution<double> jitter(0.0, config_.jitterStddevS);
    std::uniform_real_distribution<double> uni(0.0, 1.0);

    const std::size_t packetCount = (bytes + kMtuBytes - 1) / kMtuBytes;
    result.packets = packetCount;
    const double rtt = 2.0 * config_.propagationDelayS;

    double queueTime = std::max(sendTime, busyUntil_);
    double lastArrival = sendTime;

    for (std::size_t p = 0; p < packetCount; ++p) {
        ++packetCounter_;
        const std::size_t packetBytes =
            p + 1 == packetCount ? bytes - p * kMtuBytes : kMtuBytes;

        // Tail drop when the modelled backlog exceeds the queue capacity.
        if (queuedBytesAt(sendTime) + packetBytes > config_.queueCapacityBytes &&
            queueTime > sendTime) {
            ++result.droppedAtQueue;
            if (!options.reliable) continue;
        }

        int attempts = 0;
        bool deliveredPacket = false;
        double attemptTime = queueTime;
        while (!deliveredPacket && attempts <= options.maxRetransmissions) {
            // Serialisation at the bottleneck rate in effect.
            const double rate = std::max(1.0, config_.bandwidth.rateAt(attemptTime));
            const double serialization =
                static_cast<double>(packetBytes) * 8.0 / rate;
            const double departure = attemptTime + serialization;
            const double arrival = departure + config_.propagationDelayS +
                                   std::max(0.0, jitter(rng));
            if (uni(rng) < config_.lossRate) {
                if (attempts == 0) ++result.lostPackets;
                if (!options.reliable) {
                    // Unreliable: the packet is simply gone.
                    attemptTime = departure;
                    break;
                }
                ++result.retransmissions;
                ++attempts;
                // Loss detected one RTT after the send; retransmit then.
                attemptTime = departure + rtt;
                continue;
            }
            deliveredPacket = true;
            queueTime = departure;
            lastArrival = std::max(lastArrival, arrival);
        }
        if (!deliveredPacket && options.reliable) {
            // Retransmission budget exhausted: message undeliverable.
            busyUntil_ = queueTime;
            result.delivered = false;
            result.completionTime = lastArrival;
            return result;
        }
        if (!deliveredPacket && !options.reliable) queueTime = attemptTime;
    }

    busyUntil_ = queueTime;
    result.delivered =
        options.reliable || result.lostPackets + result.droppedAtQueue == 0;
    result.completionTime = lastArrival;
    return result;
}

}  // namespace semholo::net
