#include "semholo/net/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace semholo::net {

namespace {

// Pathological configurations (all-zero trace, unbounded outage lists)
// must not spin the segment walk forever; a transfer pushed past this
// horizon is treated as stalled at it.
constexpr double kMaxHorizonS = 1e7;

}  // namespace

LinkSimulator::LinkSimulator(const LinkConfig& config)
    : config_(config),
      outageSeen_(config.faults.outages.size(), false),
      collapseSeen_(config.faults.collapses.size(), false) {}

double LinkSimulator::effectiveRateAt(double time) const {
    return config_.bandwidth.rateAt(time) * config_.faults.rateMultiplier(time);
}

double LinkSimulator::nextBoundaryAfter(double t) const {
    const double iv = config_.bandwidth.interval();
    double next = (std::floor(t / iv + 1e-9) + 1.0) * iv;
    const auto consider = [&](double edge) {
        if (edge > t + 1e-12 && edge < next) next = edge;
    };
    for (const OutageWindow& o : config_.faults.outages) {
        consider(o.startS);
        consider(o.startS + o.durationS);
    }
    for (const BandwidthCollapse& c : config_.faults.collapses) {
        consider(c.startS);
        consider(c.startS + c.durationS);
    }
    return next;
}

double LinkSimulator::integrateBits(double t0, double t1) const {
    t0 = std::max(t0, 0.0);
    if (t1 <= t0) return 0.0;
    double bits = 0.0;
    double t = t0;
    while (t < t1 - 1e-12) {
        const double end = std::min(t1, nextBoundaryAfter(t));
        if (end <= t) break;  // FP guard
        bits += effectiveRateAt(0.5 * (t + end)) * (end - t);
        t = end;
    }
    return bits;
}

double LinkSimulator::drainDeadline(double from, double bits) const {
    double t = std::max(from, 0.0);
    double remaining = bits;
    while (remaining > 1e-9 && t < kMaxHorizonS) {
        const double end = nextBoundaryAfter(t);
        // FP guard (as in integrateBits): at large t the +1 interval step
        // underflows and the "next" boundary lands at or before t, which
        // would spin this walk forever without advancing.
        if (end <= t) break;
        const double rate = effectiveRateAt(0.5 * (t + end));
        const double segBits = rate * (end - t);
        if (segBits >= remaining) return t + remaining / rate;
        remaining -= segBits;
        t = end;
    }
    return t;
}

std::size_t LinkSimulator::backlogBytes(double at, double until) const {
    if (until <= at) return 0;
    return static_cast<std::size_t>(integrateBits(at, until) / 8.0);
}

std::size_t LinkSimulator::queuedBytesAt(double time) const {
    return backlogBytes(time, busyUntil_);
}

void LinkSimulator::noteFaultWindows(double start, double end,
                                     TransferResult& result) {
    // Half-open interval overlap on both sides: the transfer [start, end)
    // against the window [s, s + d). A transfer completing exactly at a
    // window's start never entered it (the old 'end >= s' mixed a closed
    // end into an otherwise half-open test and counted such transfers).
    const auto overlaps = [&](double s, double d) {
        return start < s + d && end > s;
    };
    for (std::size_t i = 0; i < config_.faults.outages.size(); ++i) {
        const OutageWindow& o = config_.faults.outages[i];
        if (!outageSeen_[i] && overlaps(o.startS, o.durationS)) {
            outageSeen_[i] = true;
            ++result.faultEvents;
        }
    }
    for (std::size_t i = 0; i < config_.faults.collapses.size(); ++i) {
        const BandwidthCollapse& c = config_.faults.collapses[i];
        if (!collapseSeen_[i] && overlaps(c.startS, c.durationS)) {
            collapseSeen_[i] = true;
            ++result.faultEvents;
        }
    }
}

TransferResult LinkSimulator::sendMessage(std::size_t bytes, double sendTime,
                                          const TransferOptions& options,
                                          std::uint64_t senderTag,
                                          std::uint64_t receiverTag) {
    const std::size_t queuedAtSend = queuedBytesAt(sendTime);
    TransferResult result = sendMessageImpl(bytes, sendTime, options);
    result.senderTag = senderTag;
    result.receiverTag = receiverTag;
    if (observer_) observer_(result, queuedAtSend);
    return result;
}

TransferResult LinkSimulator::sendMessageImpl(std::size_t bytes, double sendTime,
                                              const TransferOptions& options) {
    TransferResult result;
    result.startTime = sendTime;
    result.bytes = bytes;
    if (bytes == 0) {
        result.delivered = true;
        result.completionTime = sendTime + config_.propagationDelayS;
        return result;
    }

    std::mt19937_64 rng(config_.seed ^ (packetCounter_ * 0x9E3779B97F4A7C15ull) ^
                        static_cast<std::uint64_t>(sendTime * 1e6));
    std::normal_distribution<double> jitter(0.0, config_.jitterStddevS);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    const GilbertElliott& burst = config_.faults.burstLoss;

    // Per-attempt loss probability: i.i.d. floor, or the Gilbert-Elliott
    // chain state when burst loss is enabled (one transition draw per
    // attempt, so bursts span packets deterministically under the seed).
    const auto lossProbability = [&]() {
        double p = config_.lossRate;
        if (burst.enabled) {
            if (burstStateBad_) {
                if (uni(rng) < burst.pBadToGood) burstStateBad_ = false;
            } else if (uni(rng) < burst.pGoodToBad) {
                burstStateBad_ = true;
                ++result.faultEvents;
            }
            p = std::max(p, burstStateBad_ ? burst.lossBad : burst.lossGood);
        }
        return p;
    };

    const std::size_t packetCount = (bytes + kMtuBytes - 1) / kMtuBytes;
    result.packets = packetCount;
    const double rtt = 2.0 * config_.propagationDelayS;

    // 'queueTime' is when the last accepted byte finishes serialising —
    // the tail of the work-conserving FIFO backlog.
    double queueTime = std::max(sendTime, busyUntil_);
    double lastArrival = sendTime;

    for (std::size_t p = 0; p < packetCount; ++p) {
        ++packetCounter_;
        const std::size_t packetBytes =
            p + 1 == packetCount ? bytes - p * kMtuBytes : kMtuBytes;

        bool deliveredPacket = false;
        double enqueueTime = sendTime;
        int attempts = 0;
        while (attempts <= options.maxRetransmissions) {
            // Tail drop against the exact occupancy at this packet's
            // enqueue instant: earlier packets of this same message are
            // part of the backlog, so an oversized burst overflows
            // mid-message.
            if (backlogBytes(enqueueTime, queueTime) + packetBytes >
                config_.queueCapacityBytes) {
                ++result.droppedAtQueue;
                if (!options.reliable) break;  // gone: no link time consumed
                // A reliable sender detects the drop one RTT after the
                // attempt and re-enqueues — the drop costs real delay.
                ++result.retransmissions;
                ++attempts;
                enqueueTime += rtt;
                continue;
            }
            const double startDrain = std::max(enqueueTime, queueTime);
            const double departure =
                drainDeadline(startDrain, static_cast<double>(packetBytes) * 8.0);
            const double p_loss = lossProbability();
            const bool lost = uni(rng) < p_loss;
            // One-way delay: mean-preserving jitter around the
            // propagation delay, clamped so delay never goes negative
            // (E[delay] == propagationDelayS whenever the jitter tail
            // does not cross zero, instead of the old max(0, jitter)
            // truncation that biased the mean upward).
            const double delay =
                std::max(0.0, config_.propagationDelayS + jitter(rng));
            if (lost) {
                if (attempts == 0) ++result.lostPackets;
                // The packet crossed the bottleneck before being lost,
                // so it consumed queue capacity and link time.
                queueTime = departure;
                if (!options.reliable) break;
                ++result.retransmissions;
                ++attempts;
                enqueueTime = departure + rtt;
                continue;
            }
            deliveredPacket = true;
            queueTime = departure;
            lastArrival = std::max(lastArrival, departure + delay);
            break;
        }

        if (deliveredPacket) {
            ++result.deliveredPackets;
        } else {
            ++result.unrecoveredPackets;
            if (options.reliable) {
                // Retransmission budget exhausted: the message aborts;
                // its unsent remainder never reaches the receiver.
                result.unrecoveredPackets += packetCount - p - 1;
                break;
            }
        }
    }

    busyUntil_ = queueTime;
    result.delivered = result.unrecoveredPackets == 0;
    result.completionTime = lastArrival;
    noteFaultWindows(result.startTime, result.completionTime, result);
    return result;
}

}  // namespace semholo::net
