// Keypoint detector simulators (DESIGN.md substitution for DL models).
//
// Section 2.3 contrasts two 3D keypoint detection routes:
//  (a) 2D detection per view + learned lifting to 3D — RGB only, extra
//      compute and error from the lifting stage;
//  (b) direct 3D from RGB-D depth — faster, more accurate, needs depth.
//
// We simulate both against the ground-truth joints of the synthetic
// subject: per-joint pixel/depth noise, occlusion-driven confidence and
// dropout, and an explicit *simulated* inference-cost model calibrated
// to published detector timings (OpenPose-class 2D, VideoPose3D-class
// lifting, Kinect-SDK-class direct 3D). The cost model is documented
// data, not measured compute — it drives the Table 1 / Ablation D
// comparisons deterministically.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "semholo/body/pose.hpp"
#include "semholo/capture/rig.hpp"

namespace semholo::capture {

using body::kJointCount;

// Keypoint extraction granularity (the section 3.1 trade-off between the
// number of extracted keypoints, computation overhead and visual
// quality). Body25 is an OpenPose-class body-only detector; Extended40
// adds per-finger base joints and the face anchors; Full55 is the whole
// SMPL-X-style rig including every finger segment.
enum class KeypointSet : std::uint8_t { Body25, Extended40, Full55 };

// Which joints a detector of the given granularity reports.
std::array<bool, kJointCount> keypointSetMask(KeypointSet set);
std::size_t keypointSetCount(KeypointSet set);
std::string_view keypointSetName(KeypointSet set);

struct KeypointObservation {
    std::array<geom::Vec3f, kJointCount> positions{};
    std::array<float, kJointCount> confidence{};  // 0 = dropped out
    // Simulated inference cost of producing this observation (ms).
    double simulatedLatencyMs{0.0};
};

struct DetectorNoise {
    // 2D detection error in pixels (per coordinate std dev).
    float pixelSigma{2.0f};
    // Additional metres of error introduced by the 2D->3D lifting net.
    float liftingSigma{0.015f};
    // Direct-3D per-axis error in metres (depth-derived).
    float directSigma{0.008f};
    // Confidence decay with occlusion: a joint whose ground-truth
    // position is behind the rendered depth by more than this margin is
    // considered occluded in that view. Joint centres lie *inside* the
    // body, so the margin must exceed the largest capsule radius
    // (~0.12 m) plus sensor noise for a joint under its own surface to
    // count as visible.
    float occlusionMargin{0.16f};
    // Probability a visible joint still drops out (detector miss).
    float missRate{0.01f};
};

// Simulated per-frame inference cost model (milliseconds). Values follow
// published orders of magnitude on workstation GPUs.
struct DetectorCostModel {
    double detect2dPerMegapixelMs{18.0};  // OpenPose-class per view
    double liftPerJointMs{0.05};          // temporal-conv lifting
    double direct3dPerMegapixelMs{6.0};   // depth-based extraction
    double triangulationPerJointMs{0.002};
    // Per-keypoint regression-head cost: richer keypoint sets (hands,
    // face) need extra heads — the section 3.1 "intricate models" cost.
    double perKeypointHeadMs{0.08};
};

// Route (a): per-view 2D detection (pixel noise + occlusion dropout),
// multi-view triangulation, then a lifting-noise term. Uses only the RGB
// and depth-for-occlusion of the frames.
KeypointObservation detectKeypoints2DLifted(const CaptureRig& rig,
                                            const std::vector<RGBDFrame>& frames,
                                            const body::Pose& groundTruth,
                                            std::uint64_t seed,
                                            const DetectorNoise& noise = {},
                                            const DetectorCostModel& cost = {},
                                            KeypointSet set = KeypointSet::Full55);

// Route (b): direct 3D extraction from the RGB-D frames.
KeypointObservation detectKeypoints3DDirect(const CaptureRig& rig,
                                            const std::vector<RGBDFrame>& frames,
                                            const body::Pose& groundTruth,
                                            std::uint64_t seed,
                                            const DetectorNoise& noise = {},
                                            const DetectorCostModel& cost = {},
                                            KeypointSet set = KeypointSet::Full55);

// Mean position error of an observation vs the ground-truth joints,
// over joints with confidence above 'minConfidence'.
double keypointError(const KeypointObservation& obs, const body::Pose& groundTruth,
                     float minConfidence = 0.05f);

}  // namespace semholo::capture
