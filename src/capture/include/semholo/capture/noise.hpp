// RGB-D sensor noise model (Kinect-class, per Khoshelham & Elberink):
// axial depth noise grows quadratically with range, plus quantisation
// and random dropout. Applied to rasterized frames so the fusion and
// keypoint pipelines see realistic sensor artefacts.
#pragma once

#include <cstdint>

#include "semholo/capture/image.hpp"

namespace semholo::capture {

struct DepthNoiseModel {
    // sigma(z) = sigmaBase + sigmaQuad * z^2  (metres).
    float sigmaBase{0.001f};
    float sigmaQuad{0.0019f};
    // Probability that a valid pixel returns no depth.
    float dropoutRate{0.01f};
    // Depth quantisation step at 1 m (scales with z^2 like Kinect disparity).
    float quantizationStep{0.001f};
    // Working range; returns outside are dropped.
    float minRange{0.3f};
    float maxRange{8.0f};
};

struct ColorNoiseModel {
    float sigma{0.01f};  // additive Gaussian per channel
};

// Apply sensor noise in place. Deterministic given 'seed'.
void applyDepthNoise(DepthImage& depth, const DepthNoiseModel& model,
                     std::uint64_t seed);
void applyColorNoise(RGBImage& color, const ColorNoiseModel& model, std::uint64_t seed);

}  // namespace semholo::capture
