// Minimal typed 2D image buffers for the synthetic RGB-D pipeline.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "semholo/geometry/vec.hpp"

namespace semholo::capture {

template <typename T>
class Image {
public:
    Image() = default;
    Image(int width, int height, T fill = T{})
        : width_(width), height_(height),
          data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                fill) {}

    int width() const { return width_; }
    int height() const { return height_; }
    bool empty() const { return data_.empty(); }
    std::size_t pixelCount() const { return data_.size(); }

    T& at(int x, int y) {
        assert(inBounds(x, y));
        return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                     static_cast<std::size_t>(x)];
    }
    const T& at(int x, int y) const {
        assert(inBounds(x, y));
        return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                     static_cast<std::size_t>(x)];
    }
    bool inBounds(int x, int y) const {
        return x >= 0 && y >= 0 && x < width_ && y < height_;
    }

    const std::vector<T>& data() const { return data_; }
    std::vector<T>& data() { return data_; }

private:
    int width_{0};
    int height_{0};
    std::vector<T> data_;
};

using RGBImage = Image<geom::Vec3f>;   // linear RGB in [0,1]
using DepthImage = Image<float>;        // metres; 0 = no return

// An RGB-D frame as produced by one camera of the rig.
struct RGBDFrame {
    RGBImage color;
    DepthImage depth;
    double timestamp{0.0};

    int width() const { return color.width(); }
    int height() const { return color.height(); }
};

// Mean absolute per-pixel colour difference; the 2D image quality metric
// for the NeRF experiments.
double imageMAE(const RGBImage& a, const RGBImage& b);

// Peak signal-to-noise ratio between two RGB images (peak = 1.0).
double imagePSNR(const RGBImage& a, const RGBImage& b);

}  // namespace semholo::capture
