// Multi-camera RGB-D capture rig: N synchronised, calibrated sensors on
// a ring around the subject, with fusion into a world-space point cloud
// (synchronisation, calibration, filtering — section 2.1's capture
// pipeline).
#pragma once

#include <cstdint>
#include <vector>

#include "semholo/capture/noise.hpp"
#include "semholo/capture/rasterizer.hpp"
#include "semholo/geometry/camera.hpp"
#include "semholo/mesh/pointcloud.hpp"
#include "semholo/mesh/trimesh.hpp"

namespace semholo::capture {

struct RigConfig {
    int cameraCount{4};
    float ringRadius{2.2f};   // metres from the subject
    float ringHeight{0.2f};   // camera height relative to subject pelvis
    int imageWidth{320};
    int imageHeight{240};
    float fovY{1.05f};        // ~60 degrees
    DepthNoiseModel depthNoise{};
    ColorNoiseModel colorNoise{};
    bool addNoise{true};
};

struct FusionOptions {
    int pixelStride{2};         // back-projection subsampling
    float voxelSize{0.012f};    // downsample leaf size
    int outlierNeighbors{8};
    float outlierStddev{2.0f};
};

class CaptureRig {
public:
    explicit CaptureRig(const RigConfig& config = {});

    const std::vector<geom::Camera>& cameras() const { return cameras_; }
    const RigConfig& config() const { return config_; }

    // Capture one synchronized multi-view frame of 'subject'.
    std::vector<RGBDFrame> capture(const mesh::TriMesh& subject,
                                   std::uint64_t frameSeed) const;

    // Fuse multi-view frames into a filtered world-space point cloud.
    mesh::PointCloud fuse(const std::vector<RGBDFrame>& frames,
                          const FusionOptions& options = {}) const;

    // Convenience: capture + fuse.
    mesh::PointCloud captureCloud(const mesh::TriMesh& subject, std::uint64_t frameSeed,
                                  const FusionOptions& options = {}) const;

private:
    RigConfig config_{};
    std::vector<geom::Camera> cameras_;
};

}  // namespace semholo::capture
