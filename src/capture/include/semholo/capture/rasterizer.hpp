// Software z-buffer rasterizer: renders a triangle mesh into an RGB-D
// frame from a posed pinhole camera. This is the "RGB-D sensor" of the
// synthetic capture rig (DESIGN.md substitution for Kinect hardware).
#pragma once

#include "semholo/capture/image.hpp"
#include "semholo/geometry/camera.hpp"
#include "semholo/mesh/pointcloud.hpp"
#include "semholo/mesh/trimesh.hpp"

namespace semholo::capture {

struct RasterizerOptions {
    geom::Vec3f background{0.0f, 0.0f, 0.0f};
    // Simple headlight shading: colour *= max(dot(n, -view), ambient).
    bool shade{true};
    float ambient{0.35f};
};

// Render 'mesh' from 'camera'. Depth image holds camera-space z (metres),
// 0 where nothing was hit. Vertex colours are interpolated when present,
// otherwise mid-grey is used.
RGBDFrame rasterize(const mesh::TriMesh& mesh, const geom::Camera& camera,
                    const RasterizerOptions& options = {});

// Depth-only variant (faster; used for occlusion tests).
DepthImage rasterizeDepth(const mesh::TriMesh& mesh, const geom::Camera& camera);

// Back-project a depth image (+ colours) into a world-space point cloud.
mesh::PointCloud unprojectToCloud(const RGBDFrame& frame, const geom::Camera& camera,
                                  int stride = 1);

}  // namespace semholo::capture
