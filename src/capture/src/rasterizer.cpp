#include "semholo/capture/rasterizer.hpp"

#include <algorithm>
#include <cmath>

namespace semholo::capture {

namespace {

using geom::Camera;
using geom::Vec2f;
using geom::Vec3f;

struct ProjectedVertex {
    Vec2f pixel;
    float depth;   // camera-space z
    bool valid;
};

// Render with a per-pixel callback: shared by colour and depth paths.
template <typename PixelFn>
void rasterizeCore(const mesh::TriMesh& mesh, const Camera& camera, int width,
                   int height, DepthImage& depth, PixelFn&& writePixel) {
    std::vector<ProjectedVertex> projected(mesh.vertexCount());
    for (std::size_t i = 0; i < mesh.vertexCount(); ++i) {
        Vec2f pix;
        float z;
        const bool ok = camera.projectWorld(mesh.vertices[i], pix, z);
        projected[i] = {pix, z, ok};
    }

    for (std::size_t ti = 0; ti < mesh.triangleCount(); ++ti) {
        const mesh::Triangle& t = mesh.triangles[ti];
        const ProjectedVertex& a = projected[t.a];
        const ProjectedVertex& b = projected[t.b];
        const ProjectedVertex& c = projected[t.c];
        if (!a.valid || !b.valid || !c.valid) continue;

        const float minX = std::min({a.pixel.x, b.pixel.x, c.pixel.x});
        const float maxX = std::max({a.pixel.x, b.pixel.x, c.pixel.x});
        const float minY = std::min({a.pixel.y, b.pixel.y, c.pixel.y});
        const float maxY = std::max({a.pixel.y, b.pixel.y, c.pixel.y});
        const int x0 = std::max(0, static_cast<int>(std::floor(minX)));
        const int x1 = std::min(width - 1, static_cast<int>(std::ceil(maxX)));
        const int y0 = std::max(0, static_cast<int>(std::floor(minY)));
        const int y1 = std::min(height - 1, static_cast<int>(std::ceil(maxY)));
        if (x0 > x1 || y0 > y1) continue;

        const Vec2f e0 = b.pixel - a.pixel;
        const Vec2f e1 = c.pixel - a.pixel;
        const float denom = e0.x * e1.y - e0.y * e1.x;
        if (std::fabs(denom) < 1e-9f) continue;
        const float invDenom = 1.0f / denom;

        for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x) {
                const Vec2f p{static_cast<float>(x) + 0.5f,
                              static_cast<float>(y) + 0.5f};
                const Vec2f d = p - a.pixel;
                const float v = (d.x * e1.y - d.y * e1.x) * invDenom;
                const float w = (e0.x * d.y - e0.y * d.x) * invDenom;
                const float u = 1.0f - v - w;
                if (u < 0.0f || v < 0.0f || w < 0.0f) continue;
                // Perspective-correct interpolation of depth: interpolate
                // 1/z linearly in screen space.
                const float invZ = u / a.depth + v / b.depth + w / c.depth;
                if (invZ <= 0.0f) continue;
                const float z = 1.0f / invZ;
                float& zb = depth.at(x, y);
                if (zb != 0.0f && zb <= z) continue;
                zb = z;
                // Perspective-correct barycentrics for attributes.
                const float pu = (u / a.depth) * z;
                const float pv = (v / b.depth) * z;
                const float pw = (w / c.depth) * z;
                writePixel(x, y, ti, pu, pv, pw);
            }
        }
    }
}

}  // namespace

RGBDFrame rasterize(const mesh::TriMesh& mesh, const Camera& camera,
                    const RasterizerOptions& options) {
    const int w = camera.intrinsics.width;
    const int h = camera.intrinsics.height;
    RGBDFrame frame;
    frame.color = RGBImage(w, h, options.background);
    frame.depth = DepthImage(w, h, 0.0f);

    const bool hasColors = mesh.hasColors();
    const bool hasNormals = mesh.hasNormals();
    const Vec3f eye = camera.worldFromCamera.translation;

    rasterizeCore(mesh, camera, w, h, frame.depth,
                  [&](int x, int y, std::size_t ti, float u, float v, float wgt) {
                      const mesh::Triangle& t = mesh.triangles[ti];
                      Vec3f color{0.6f, 0.6f, 0.6f};
                      if (hasColors)
                          color = mesh.colors[t.a] * u + mesh.colors[t.b] * v +
                                  mesh.colors[t.c] * wgt;
                      if (options.shade) {
                          Vec3f n;
                          if (hasNormals)
                              n = (mesh.normals[t.a] * u + mesh.normals[t.b] * v +
                                   mesh.normals[t.c] * wgt)
                                      .normalized();
                          else
                              n = mesh.triangleNormal(t);
                          const Vec3f pos = mesh.vertices[t.a] * u +
                                            mesh.vertices[t.b] * v +
                                            mesh.vertices[t.c] * wgt;
                          const Vec3f toEye = (eye - pos).normalized();
                          const float diffuse =
                              std::max(options.ambient, std::fabs(n.dot(toEye)));
                          color = color * diffuse;
                      }
                      frame.color.at(x, y) = color;
                  });
    return frame;
}

DepthImage rasterizeDepth(const mesh::TriMesh& mesh, const Camera& camera) {
    DepthImage depth(camera.intrinsics.width, camera.intrinsics.height, 0.0f);
    rasterizeCore(mesh, camera, camera.intrinsics.width, camera.intrinsics.height,
                  depth, [](int, int, std::size_t, float, float, float) {});
    return depth;
}

mesh::PointCloud unprojectToCloud(const RGBDFrame& frame, const Camera& camera,
                                  int stride) {
    mesh::PointCloud cloud;
    stride = std::max(1, stride);
    for (int y = 0; y < frame.depth.height(); y += stride) {
        for (int x = 0; x < frame.depth.width(); x += stride) {
            const float z = frame.depth.at(x, y);
            if (z <= 0.0f) continue;
            const Vec3f pCam = camera.intrinsics.unproject(
                {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f}, z);
            cloud.points.push_back(camera.cameraToWorld(pCam));
            cloud.colors.push_back(frame.color.at(x, y));
        }
    }
    return cloud;
}

double imageMAE(const RGBImage& a, const RGBImage& b) {
    if (a.width() != b.width() || a.height() != b.height() || a.empty()) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        const Vec3f d = a.data()[i] - b.data()[i];
        total += (std::fabs(d.x) + std::fabs(d.y) + std::fabs(d.z)) / 3.0;
    }
    return total / static_cast<double>(a.data().size());
}

double imagePSNR(const RGBImage& a, const RGBImage& b) {
    if (a.width() != b.width() || a.height() != b.height() || a.empty()) return 0.0;
    double mse = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i)
        mse += static_cast<double>((a.data()[i] - b.data()[i]).norm2()) / 3.0;
    mse /= static_cast<double>(a.data().size());
    if (mse <= 0.0) return 1e9;
    return 10.0 * std::log10(1.0 / mse);
}

}  // namespace semholo::capture
