#include "semholo/capture/keypoints.hpp"

#include <cmath>
#include <random>

namespace semholo::capture {

namespace {

using body::jointKeypoints;
using geom::Vec2f;
using geom::Vec3f;

// Is the world point visible in this view (not occluded by the rendered
// depth and inside the image)?
bool visibleInView(const geom::Camera& camera, const DepthImage& depth, Vec3f world,
                   float margin) {
    Vec2f pix;
    float z;
    if (!camera.projectWorld(world, pix, z)) return false;
    if (!camera.intrinsics.inBounds(pix)) return false;
    const int x = static_cast<int>(pix.x);
    const int y = static_cast<int>(pix.y);
    const float zb = depth.at(x, y);
    if (zb <= 0.0f) return true;  // dropout: nothing to occlude against
    return z <= zb + margin;
}

}  // namespace

std::array<bool, kJointCount> keypointSetMask(KeypointSet set) {
    using body::JointId;
    using body::index;
    std::array<bool, kJointCount> mask{};
    // Body25: everything before the hands.
    for (std::size_t j = 0; j < body::kBodyJointCount; ++j) mask[j] = true;
    if (set == KeypointSet::Body25) return mask;
    // Extended40: add the five proximal finger joints of each hand and
    // both index tips (pointing matters for collaboration).
    if (set == KeypointSet::Extended40) {
        for (const JointId j :
             {JointId::LeftThumb1, JointId::LeftIndex1, JointId::LeftMiddle1,
              JointId::LeftRing1, JointId::LeftPinky1, JointId::LeftIndex3,
              JointId::RightThumb1, JointId::RightIndex1, JointId::RightMiddle1,
              JointId::RightRing1, JointId::RightPinky1, JointId::RightIndex3})
            mask[index(j)] = true;
        // Extended40 also refines the face anchors (already in the first
        // 25: jaw and eyes), plus three extra per-hand joints above make
        // 25 + 12 = 37; count name kept for the detector-family analogy.
        return mask;
    }
    mask.fill(true);
    return mask;
}

std::size_t keypointSetCount(KeypointSet set) {
    const auto mask = keypointSetMask(set);
    std::size_t n = 0;
    for (const bool b : mask)
        if (b) ++n;
    return n;
}

std::string_view keypointSetName(KeypointSet set) {
    switch (set) {
        case KeypointSet::Body25: return "body-25";
        case KeypointSet::Extended40: return "extended-40";
        case KeypointSet::Full55: return "full-55";
    }
    return "unknown";
}

KeypointObservation detectKeypoints2DLifted(const CaptureRig& rig,
                                            const std::vector<RGBDFrame>& frames,
                                            const body::Pose& groundTruth,
                                            std::uint64_t seed,
                                            const DetectorNoise& noise,
                                            const DetectorCostModel& cost,
                                            KeypointSet set) {
    KeypointObservation obs;
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> gauss(0.0f, 1.0f);
    std::uniform_real_distribution<float> uni(0.0f, 1.0f);
    const auto gt = jointKeypoints(groundTruth);
    const auto& cameras = rig.cameras();
    const auto mask = keypointSetMask(set);

    double megapixels = 0.0;
    for (const auto& f : frames)
        megapixels += static_cast<double>(f.width()) * f.height() / 1e6;

    for (std::size_t j = 0; j < kJointCount; ++j) {
        if (!mask[j]) {
            obs.confidence[j] = 0.0f;
            continue;
        }
        // Collect per-view noisy 2D observations with occlusion tests.
        struct View2D {
            std::size_t cam;
            Vec2f pixel;
        };
        std::vector<View2D> views;
        for (std::size_t c = 0; c < cameras.size() && c < frames.size(); ++c) {
            if (!visibleInView(cameras[c], frames[c].depth, gt[j],
                               noise.occlusionMargin))
                continue;
            if (uni(rng) < noise.missRate) continue;
            Vec2f pix;
            float z;
            if (!cameras[c].projectWorld(gt[j], pix, z)) continue;
            pix.x += gauss(rng) * noise.pixelSigma;
            pix.y += gauss(rng) * noise.pixelSigma;
            views.push_back({c, pix});
        }
        if (views.size() < 2) {
            obs.confidence[j] = 0.0f;  // triangulation impossible
            continue;
        }

        // Linear triangulation: least-squares intersection of the view
        // rays (closed form over ray closest points).
        Vec3f num{};
        geom::Mat3 denom = geom::Mat3::zero();
        for (const View2D& v : views) {
            const geom::Ray ray = cameras[v.cam].pixelRayWorld(v.pixel);
            const geom::Mat3 proj =
                geom::Mat3::identity() - geom::Mat3::outer(ray.direction, ray.direction);
            denom = denom + proj;
            num += proj * ray.origin;
        }
        const Vec3f triangulated = denom.inverse() * num;

        // Lifting-network error term (the paper's extra inference noise).
        const Vec3f lifted = triangulated + Vec3f{gauss(rng), gauss(rng), gauss(rng)} *
                                                noise.liftingSigma;
        obs.positions[j] = lifted;
        obs.confidence[j] =
            static_cast<float>(views.size()) / static_cast<float>(cameras.size());
    }

    const auto joints = static_cast<double>(keypointSetCount(set));
    obs.simulatedLatencyMs =
        megapixels * cost.detect2dPerMegapixelMs + joints * cost.liftPerJointMs +
        joints * cost.triangulationPerJointMs * static_cast<double>(cameras.size()) +
        joints * cost.perKeypointHeadMs * static_cast<double>(cameras.size());
    return obs;
}

KeypointObservation detectKeypoints3DDirect(const CaptureRig& rig,
                                            const std::vector<RGBDFrame>& frames,
                                            const body::Pose& groundTruth,
                                            std::uint64_t seed,
                                            const DetectorNoise& noise,
                                            const DetectorCostModel& cost,
                                            KeypointSet set) {
    KeypointObservation obs;
    std::mt19937_64 rng(seed ^ 0xD1CEB00Cull);
    std::normal_distribution<float> gauss(0.0f, 1.0f);
    std::uniform_real_distribution<float> uni(0.0f, 1.0f);
    const auto gt = jointKeypoints(groundTruth);
    const auto& cameras = rig.cameras();
    const auto mask = keypointSetMask(set);

    double megapixels = 0.0;
    for (const auto& f : frames)
        megapixels += static_cast<double>(f.width()) * f.height() / 1e6;

    for (std::size_t j = 0; j < kJointCount; ++j) {
        if (!mask[j]) {
            obs.confidence[j] = 0.0f;
            continue;
        }
        // Average the depth-derived estimates over views that see the joint.
        Vec3f sum{};
        int seen = 0;
        for (std::size_t c = 0; c < cameras.size() && c < frames.size(); ++c) {
            if (!visibleInView(cameras[c], frames[c].depth, gt[j],
                               noise.occlusionMargin))
                continue;
            if (uni(rng) < noise.missRate) continue;
            sum += gt[j] + Vec3f{gauss(rng), gauss(rng), gauss(rng)} * noise.directSigma;
            ++seen;
        }
        if (seen == 0) {
            obs.confidence[j] = 0.0f;
            continue;
        }
        obs.positions[j] = sum / static_cast<float>(seen);
        obs.confidence[j] =
            static_cast<float>(seen) / static_cast<float>(cameras.size());
    }

    obs.simulatedLatencyMs =
        megapixels * cost.direct3dPerMegapixelMs +
        static_cast<double>(keypointSetCount(set)) * cost.perKeypointHeadMs;
    return obs;
}

double keypointError(const KeypointObservation& obs, const body::Pose& groundTruth,
                     float minConfidence) {
    const auto gt = jointKeypoints(groundTruth);
    double total = 0.0;
    int n = 0;
    for (std::size_t j = 0; j < kJointCount; ++j) {
        if (obs.confidence[j] < minConfidence) continue;
        total += (obs.positions[j] - gt[j]).norm();
        ++n;
    }
    return n > 0 ? total / n : 0.0;
}

}  // namespace semholo::capture
