#include "semholo/capture/rig.hpp"

#include <cmath>

namespace semholo::capture {

CaptureRig::CaptureRig(const RigConfig& config) : config_(config) {
    const auto intr = geom::CameraIntrinsics::fromFov(
        config.imageWidth, config.imageHeight, config.fovY);
    cameras_.reserve(static_cast<std::size_t>(config.cameraCount));
    for (int i = 0; i < config.cameraCount; ++i) {
        const float angle = 2.0f * static_cast<float>(M_PI) * static_cast<float>(i) /
                            static_cast<float>(config.cameraCount);
        const geom::Vec3f eye{config.ringRadius * std::sin(angle), config.ringHeight,
                              config.ringRadius * std::cos(angle)};
        cameras_.push_back(
            geom::Camera::lookAt(eye, {0.0f, 0.0f, 0.0f}, {0, 1, 0}, intr));
    }
}

std::vector<RGBDFrame> CaptureRig::capture(const mesh::TriMesh& subject,
                                           std::uint64_t frameSeed) const {
    std::vector<RGBDFrame> frames;
    frames.reserve(cameras_.size());
    for (std::size_t i = 0; i < cameras_.size(); ++i) {
        RGBDFrame frame = rasterize(subject, cameras_[i]);
        if (config_.addNoise) {
            applyDepthNoise(frame.depth, config_.depthNoise, frameSeed * 131 + i);
            applyColorNoise(frame.color, config_.colorNoise, frameSeed * 131 + i);
        }
        frames.push_back(std::move(frame));
    }
    return frames;
}

mesh::PointCloud CaptureRig::fuse(const std::vector<RGBDFrame>& frames,
                                  const FusionOptions& options) const {
    mesh::PointCloud merged;
    for (std::size_t i = 0; i < frames.size() && i < cameras_.size(); ++i)
        merged.append(unprojectToCloud(frames[i], cameras_[i], options.pixelStride));
    if (merged.empty()) return merged;
    mesh::PointCloud filtered =
        merged.removeStatisticalOutliers(static_cast<std::size_t>(options.outlierNeighbors),
                                         options.outlierStddev);
    return filtered.voxelDownsample(options.voxelSize);
}

mesh::PointCloud CaptureRig::captureCloud(const mesh::TriMesh& subject,
                                          std::uint64_t frameSeed,
                                          const FusionOptions& options) const {
    return fuse(capture(subject, frameSeed), options);
}

}  // namespace semholo::capture
