#include "semholo/capture/noise.hpp"

#include <cmath>
#include <random>

namespace semholo::capture {

void applyDepthNoise(DepthImage& depth, const DepthNoiseModel& model,
                     std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<float> gauss(0.0f, 1.0f);
    std::uniform_real_distribution<float> uni(0.0f, 1.0f);
    for (float& z : depth.data()) {
        if (z <= 0.0f) continue;
        if (z < model.minRange || z > model.maxRange || uni(rng) < model.dropoutRate) {
            z = 0.0f;
            continue;
        }
        const float sigma = model.sigmaBase + model.sigmaQuad * z * z;
        z += gauss(rng) * sigma;
        // Disparity-like quantisation: step grows with z^2.
        const float step = model.quantizationStep * z * z;
        if (step > 0.0f) z = std::round(z / step) * step;
        if (z <= 0.0f) z = 0.0f;
    }
}

void applyColorNoise(RGBImage& color, const ColorNoiseModel& model,
                     std::uint64_t seed) {
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    std::normal_distribution<float> gauss(0.0f, model.sigma);
    for (geom::Vec3f& c : color.data()) {
        c.x = geom::clamp(c.x + gauss(rng), 0.0f, 1.0f);
        c.y = geom::clamp(c.y + gauss(rng), 0.0f, 1.0f);
        c.z = geom::clamp(c.z + gauss(rng), 0.0f, 1.0f);
    }
}

}  // namespace semholo::capture
