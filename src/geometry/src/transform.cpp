#include "semholo/geometry/transform.hpp"

#include <algorithm>
#include <cmath>

namespace semholo::geom {

bool AABB::intersectRay(const Ray& r, float& tNear, float& tFar) const {
    tNear = -std::numeric_limits<float>::max();
    tFar = std::numeric_limits<float>::max();
    for (std::size_t axis = 0; axis < 3; ++axis) {
        const float o = r.origin[axis];
        const float d = r.direction[axis];
        if (std::fabs(d) < 1e-12f) {
            if (o < lo[axis] || o > hi[axis]) return false;
            continue;
        }
        float t0 = (lo[axis] - o) / d;
        float t1 = (hi[axis] - o) / d;
        if (t0 > t1) std::swap(t0, t1);
        tNear = std::max(tNear, t0);
        tFar = std::min(tFar, t1);
        if (tNear > tFar) return false;
    }
    return true;
}

float pointSegmentDistance(Vec3f p, Vec3f a, Vec3f b, float& tOut) {
    const Vec3f ab = b - a;
    const float len2 = ab.norm2();
    if (len2 < 1e-12f) {
        tOut = 0.0f;
        return (p - a).norm();
    }
    tOut = clamp((p - a).dot(ab) / len2, 0.0f, 1.0f);
    return (p - (a + ab * tOut)).norm();
}

Vec3f closestPointOnTriangle(Vec3f p, Vec3f a, Vec3f b, Vec3f c) {
    // Ericson, "Real-Time Collision Detection", section 5.1.5.
    const Vec3f ab = b - a, ac = c - a, ap = p - a;
    const float d1 = ab.dot(ap), d2 = ac.dot(ap);
    if (d1 <= 0.0f && d2 <= 0.0f) return a;

    const Vec3f bp = p - b;
    const float d3 = ab.dot(bp), d4 = ac.dot(bp);
    if (d3 >= 0.0f && d4 <= d3) return b;

    const float vc = d1 * d4 - d3 * d2;
    if (vc <= 0.0f && d1 >= 0.0f && d3 <= 0.0f) {
        const float v = d1 / (d1 - d3);
        return a + ab * v;
    }

    const Vec3f cp = p - c;
    const float d5 = ab.dot(cp), d6 = ac.dot(cp);
    if (d6 >= 0.0f && d5 <= d6) return c;

    const float vb = d5 * d2 - d1 * d6;
    if (vb <= 0.0f && d2 >= 0.0f && d6 <= 0.0f) {
        const float w = d2 / (d2 - d6);
        return a + ac * w;
    }

    const float va = d3 * d6 - d5 * d4;
    if (va <= 0.0f && (d4 - d3) >= 0.0f && (d5 - d6) >= 0.0f) {
        const float w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        return b + (c - b) * w;
    }

    const float denom = 1.0f / (va + vb + vc);
    const float v = vb * denom;
    const float w = vc * denom;
    return a + ab * v + ac * w;
}

}  // namespace semholo::geom
