#include "semholo/geometry/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace semholo::geom {

EigenDecomposition jacobiEigenSymmetric(const std::vector<double>& matrix,
                                        std::size_t n, int maxSweeps,
                                        double tolerance) {
    EigenDecomposition out;
    out.n = n;
    if (n == 0 || matrix.size() < n * n) return out;

    // Working copy, symmetrized.
    std::vector<double> a(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a[i * n + j] = 0.5 * (matrix[i * n + j] + matrix[j * n + i]);

    // Accumulated rotations, row-major: v[i*n+k] = component i of vec k.
    std::vector<double> v(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

    for (int sweep = 0; sweep < maxSweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
        if (off < tolerance) break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::fabs(apq) < 1e-300) continue;
                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = 0.5 * (aqq - app) / apq;
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::fabs(theta) +
                                  std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // Rotate rows/columns p and q.
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k * n + p];
                    const double akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p * n + k];
                    const double aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v[k * n + p];
                    const double vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract, sort descending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> diag(n);
    for (std::size_t i = 0; i < n; ++i) diag[i] = a[i * n + i];
    std::sort(order.begin(), order.end(),
              [&diag](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

    out.values.resize(n);
    out.vectors.resize(n * n);
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = diag[order[k]];
        for (std::size_t i = 0; i < n; ++i)
            out.vectors[k * n + i] = v[i * n + order[k]];
    }
    return out;
}

}  // namespace semholo::geom
