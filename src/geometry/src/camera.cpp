#include "semholo/geometry/camera.hpp"

#include <cmath>

namespace semholo::geom {

CameraIntrinsics CameraIntrinsics::fromFov(int width, int height, float fovYRadians) {
    CameraIntrinsics k;
    k.width = width;
    k.height = height;
    k.fy = static_cast<float>(height) * 0.5f / std::tan(fovYRadians * 0.5f);
    k.fx = k.fy;  // square pixels
    k.cx = static_cast<float>(width) * 0.5f;
    k.cy = static_cast<float>(height) * 0.5f;
    return k;
}

bool CameraIntrinsics::project(Vec3f pCam, Vec2f& pixel) const {
    if (pCam.z <= 1e-6f) return false;
    pixel.x = fx * pCam.x / pCam.z + cx;
    pixel.y = fy * pCam.y / pCam.z + cy;
    return true;
}

Vec3f CameraIntrinsics::unproject(Vec2f pixel, float depth) const {
    return {(pixel.x - cx) / fx * depth, (pixel.y - cy) / fy * depth, depth};
}

Ray CameraIntrinsics::pixelRay(Vec2f pixel) const {
    const Vec3f dir{(pixel.x - cx) / fx, (pixel.y - cy) / fy, 1.0f};
    return {Vec3f{}, dir.normalized()};
}

Camera Camera::lookAt(Vec3f eye, Vec3f target, Vec3f up, CameraIntrinsics intr) {
    // Camera convention: +z forward, +x right, +y down (image coordinates).
    const Vec3f fwd = (target - eye).normalized();
    Vec3f right = fwd.cross(up).normalized();
    if (right.norm2() < 1e-10f) right = Vec3f{1, 0, 0};
    const Vec3f down = fwd.cross(right).normalized();
    Mat3 r;
    // Columns of worldFromCamera rotation are the camera axes in world space.
    for (std::size_t i = 0; i < 3; ++i) {
        r(i, 0) = right[i];
        r(i, 1) = down[i];
        r(i, 2) = fwd[i];
    }
    Camera cam;
    cam.intrinsics = intr;
    cam.worldFromCamera = {Quat::fromMatrix(r), eye};
    return cam;
}

bool Camera::projectWorld(Vec3f pWorld, Vec2f& pixel, float& depth) const {
    const Vec3f pCam = worldToCamera(pWorld);
    depth = pCam.z;
    return intrinsics.project(pCam, pixel);
}

Ray Camera::pixelRayWorld(Vec2f pixel) const {
    const Ray local = intrinsics.pixelRay(pixel);
    return {worldFromCamera.translation,
            worldFromCamera.applyVector(local.direction).normalized()};
}

}  // namespace semholo::geom
