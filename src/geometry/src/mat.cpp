#include "semholo/geometry/mat.hpp"

#include <cmath>

namespace semholo::geom {

Mat3 Mat3::diagonal(Vec3f d) {
    Mat3 r = zero();
    r(0, 0) = d.x;
    r(1, 1) = d.y;
    r(2, 2) = d.z;
    return r;
}

Mat3 Mat3::outer(Vec3f a, Vec3f b) {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) r(i, j) = a[i] * b[j];
    return r;
}

Mat3 Mat3::skew(Vec3f v) {
    Mat3 r = zero();
    r(0, 1) = -v.z;
    r(0, 2) = v.y;
    r(1, 0) = v.z;
    r(1, 2) = -v.x;
    r(2, 0) = -v.y;
    r(2, 1) = v.x;
    return r;
}

Mat3 Mat3::rotationX(float a) {
    Mat3 r;
    const float c = std::cos(a), s = std::sin(a);
    r(1, 1) = c;
    r(1, 2) = -s;
    r(2, 1) = s;
    r(2, 2) = c;
    return r;
}

Mat3 Mat3::rotationY(float a) {
    Mat3 r;
    const float c = std::cos(a), s = std::sin(a);
    r(0, 0) = c;
    r(0, 2) = s;
    r(2, 0) = -s;
    r(2, 2) = c;
    return r;
}

Mat3 Mat3::rotationZ(float a) {
    Mat3 r;
    const float c = std::cos(a), s = std::sin(a);
    r(0, 0) = c;
    r(0, 1) = -s;
    r(1, 0) = s;
    r(1, 1) = c;
    return r;
}

Mat3 Mat3::fromAxisAngle(Vec3f axisAngle) {
    const float theta = axisAngle.norm();
    if (theta < 1e-8f) {
        // Small-angle expansion keeps gradients stable near identity.
        return identity() + skew(axisAngle);
    }
    const Vec3f axis = axisAngle / theta;
    const Mat3 k = skew(axis);
    const float c = std::cos(theta), s = std::sin(theta);
    return identity() + k * s + (k * k) * (1.0f - c);
}

Mat3 Mat3::operator+(const Mat3& o) const {
    Mat3 r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = m[i] + o.m[i];
    return r;
}

Mat3 Mat3::operator-(const Mat3& o) const {
    Mat3 r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = m[i] - o.m[i];
    return r;
}

Mat3 Mat3::operator*(const Mat3& o) const {
    Mat3 r = zero();
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t k = 0; k < 3; ++k) {
            const float a = (*this)(i, k);
            for (std::size_t j = 0; j < 3; ++j) r(i, j) += a * o(k, j);
        }
    return r;
}

Mat3 Mat3::operator*(float s) const {
    Mat3 r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = m[i] * s;
    return r;
}

Vec3f Mat3::operator*(Vec3f v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
}

Mat3 Mat3::transposed() const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) r(i, j) = (*this)(j, i);
    return r;
}

float Mat3::determinant() const {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
}

Mat3 Mat3::inverse() const {
    const float det = determinant();
    if (std::fabs(det) < 1e-12f) return identity();
    const float inv = 1.0f / det;
    Mat3 r;
    r(0, 0) = (m[4] * m[8] - m[5] * m[7]) * inv;
    r(0, 1) = (m[2] * m[7] - m[1] * m[8]) * inv;
    r(0, 2) = (m[1] * m[5] - m[2] * m[4]) * inv;
    r(1, 0) = (m[5] * m[6] - m[3] * m[8]) * inv;
    r(1, 1) = (m[0] * m[8] - m[2] * m[6]) * inv;
    r(1, 2) = (m[2] * m[3] - m[0] * m[5]) * inv;
    r(2, 0) = (m[3] * m[7] - m[4] * m[6]) * inv;
    r(2, 1) = (m[1] * m[6] - m[0] * m[7]) * inv;
    r(2, 2) = (m[0] * m[4] - m[1] * m[3]) * inv;
    return r;
}

Mat4 Mat4::translation(Vec3f t) {
    Mat4 r;
    r(0, 3) = t.x;
    r(1, 3) = t.y;
    r(2, 3) = t.z;
    return r;
}

Mat4 Mat4::scale(Vec3f s) {
    Mat4 r;
    r(0, 0) = s.x;
    r(1, 1) = s.y;
    r(2, 2) = s.z;
    return r;
}

Mat4 Mat4::fromRT(const Mat3& rot, Vec3f t) {
    Mat4 r;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) r(i, j) = rot(i, j);
    r(0, 3) = t.x;
    r(1, 3) = t.y;
    r(2, 3) = t.z;
    return r;
}

Mat4 Mat4::operator*(const Mat4& o) const {
    Mat4 r = zero();
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t k = 0; k < 4; ++k) {
            const float a = (*this)(i, k);
            for (std::size_t j = 0; j < 4; ++j) r(i, j) += a * o(k, j);
        }
    return r;
}

Mat4 Mat4::operator+(const Mat4& o) const {
    Mat4 r;
    for (std::size_t i = 0; i < 16; ++i) r.m[i] = m[i] + o.m[i];
    return r;
}

Mat4 Mat4::operator*(float s) const {
    Mat4 r;
    for (std::size_t i = 0; i < 16; ++i) r.m[i] = m[i] * s;
    return r;
}

Vec4f Mat4::operator*(Vec4f v) const {
    Vec4f r{0, 0, 0, 0};
    for (std::size_t i = 0; i < 4; ++i)
        r[i] = m[i * 4] * v.x + m[i * 4 + 1] * v.y + m[i * 4 + 2] * v.z + m[i * 4 + 3] * v.w;
    return r;
}

Vec3f Mat4::transformPoint(Vec3f p) const {
    const Vec4f h = (*this) * Vec4f{p, 1.0f};
    if (h.w != 0.0f && h.w != 1.0f) return h.xyz() / h.w;
    return h.xyz();
}

Vec3f Mat4::transformVector(Vec3f v) const {
    return ((*this) * Vec4f{v, 0.0f}).xyz();
}

Mat4 Mat4::transposed() const {
    Mat4 r;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) r(i, j) = (*this)(j, i);
    return r;
}

Mat4 Mat4::inverse() const {
    // Gauss-Jordan elimination with partial pivoting on [A | I].
    std::array<std::array<double, 8>, 4> a{};
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) a[i][j] = (*this)(i, j);
        a[i][4 + i] = 1.0;
    }
    for (std::size_t col = 0; col < 4; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < 4; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
        if (std::fabs(a[pivot][col]) < 1e-12) return identity();
        std::swap(a[pivot], a[col]);
        const double inv = 1.0 / a[col][col];
        for (std::size_t j = 0; j < 8; ++j) a[col][j] *= inv;
        for (std::size_t r = 0; r < 4; ++r) {
            if (r == col) continue;
            const double f = a[r][col];
            for (std::size_t j = 0; j < 8; ++j) a[r][j] -= f * a[col][j];
        }
    }
    Mat4 out;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) out(i, j) = static_cast<float>(a[i][4 + j]);
    return out;
}

Mat4 Mat4::rigidInverse() const {
    const Mat3 rt = rotation().transposed();
    const Vec3f t = translationPart();
    return fromRT(rt, -(rt * t));
}

Mat3 Mat4::rotation() const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) r(i, j) = (*this)(i, j);
    return r;
}

}  // namespace semholo::geom
