#include "semholo/geometry/quat.hpp"

#include <algorithm>
#include <cmath>

namespace semholo::geom {

Quat Quat::fromAxisAngle(Vec3f axisAngle) {
    const float theta = axisAngle.norm();
    if (theta < 1e-8f) {
        // First-order expansion for tiny rotations.
        return Quat{1.0f, axisAngle.x * 0.5f, axisAngle.y * 0.5f, axisAngle.z * 0.5f}
            .normalized();
    }
    const Vec3f axis = axisAngle / theta;
    const float h = theta * 0.5f;
    const float s = std::sin(h);
    return {std::cos(h), axis.x * s, axis.y * s, axis.z * s};
}

Quat Quat::fromMatrix(const Mat3& m) {
    // Shepperd's method: pick the largest diagonal term for stability.
    const float tr = m.trace();
    Quat q;
    if (tr > 0.0f) {
        const float s = std::sqrt(tr + 1.0f) * 2.0f;
        q.w = 0.25f * s;
        q.x = (m(2, 1) - m(1, 2)) / s;
        q.y = (m(0, 2) - m(2, 0)) / s;
        q.z = (m(1, 0) - m(0, 1)) / s;
    } else if (m(0, 0) > m(1, 1) && m(0, 0) > m(2, 2)) {
        const float s = std::sqrt(1.0f + m(0, 0) - m(1, 1) - m(2, 2)) * 2.0f;
        q.w = (m(2, 1) - m(1, 2)) / s;
        q.x = 0.25f * s;
        q.y = (m(0, 1) + m(1, 0)) / s;
        q.z = (m(0, 2) + m(2, 0)) / s;
    } else if (m(1, 1) > m(2, 2)) {
        const float s = std::sqrt(1.0f + m(1, 1) - m(0, 0) - m(2, 2)) * 2.0f;
        q.w = (m(0, 2) - m(2, 0)) / s;
        q.x = (m(0, 1) + m(1, 0)) / s;
        q.y = 0.25f * s;
        q.z = (m(1, 2) + m(2, 1)) / s;
    } else {
        const float s = std::sqrt(1.0f + m(2, 2) - m(0, 0) - m(1, 1)) * 2.0f;
        q.w = (m(1, 0) - m(0, 1)) / s;
        q.x = (m(0, 2) + m(2, 0)) / s;
        q.y = (m(1, 2) + m(2, 1)) / s;
        q.z = 0.25f * s;
    }
    return q.normalized();
}

Quat Quat::fromTwoVectors(Vec3f from, Vec3f to) {
    const Vec3f f = from.normalized();
    const Vec3f t = to.normalized();
    const float d = f.dot(t);
    if (d > 1.0f - 1e-7f) return identity();
    if (d < -1.0f + 1e-7f) {
        // Antipodal: rotate 180 degrees around any axis orthogonal to f.
        Vec3f axis = f.cross(Vec3f{1, 0, 0});
        if (axis.norm2() < 1e-10f) axis = f.cross(Vec3f{0, 1, 0});
        axis = axis.normalized();
        return {0.0f, axis.x, axis.y, axis.z};
    }
    const Vec3f c = f.cross(t);
    Quat q{1.0f + d, c.x, c.y, c.z};
    return q.normalized();
}

Quat Quat::operator*(const Quat& o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
}

float Quat::norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

Quat Quat::normalized() const {
    const float n = norm();
    if (n < 1e-12f) return identity();
    return {w / n, x / n, y / n, z / n};
}

Vec3f Quat::rotate(Vec3f v) const {
    // v' = v + 2q_v x (q_v x v + w v)
    const Vec3f qv{x, y, z};
    const Vec3f t = qv.cross(v) * 2.0f;
    return v + t * w + qv.cross(t);
}

Mat3 Quat::toMatrix() const {
    Mat3 r;
    const float xx = x * x, yy = y * y, zz = z * z;
    const float xy = x * y, xz = x * z, yz = y * z;
    const float wx = w * x, wy = w * y, wz = w * z;
    r(0, 0) = 1 - 2 * (yy + zz);
    r(0, 1) = 2 * (xy - wz);
    r(0, 2) = 2 * (xz + wy);
    r(1, 0) = 2 * (xy + wz);
    r(1, 1) = 1 - 2 * (xx + zz);
    r(1, 2) = 2 * (yz - wx);
    r(2, 0) = 2 * (xz - wy);
    r(2, 1) = 2 * (yz + wx);
    r(2, 2) = 1 - 2 * (xx + yy);
    return r;
}

Vec3f Quat::toAxisAngle() const {
    Quat q = normalized();
    if (q.w < 0.0f) q = q * -1.0f;  // canonical hemisphere
    const float s2 = std::sqrt(std::max(0.0f, 1.0f - q.w * q.w));
    const float angle = 2.0f * std::atan2(s2, q.w);
    if (s2 < 1e-8f) return {q.x * 2.0f, q.y * 2.0f, q.z * 2.0f};
    return Vec3f{q.x, q.y, q.z} * (angle / s2);
}

Quat slerp(const Quat& a, const Quat& b, float t) {
    Quat bb = b;
    float d = a.dot(b);
    if (d < 0.0f) {
        bb = b * -1.0f;
        d = -d;
    }
    if (d > 0.9995f) {
        // Nearly parallel: nlerp avoids the 0/0 in the slerp weights.
        return (a * (1.0f - t) + bb * t).normalized();
    }
    const float theta = std::acos(std::clamp(d, -1.0f, 1.0f));
    const float s = std::sin(theta);
    const float wa = std::sin((1.0f - t) * theta) / s;
    const float wb = std::sin(t * theta) / s;
    return (a * wa + bb * wb).normalized();
}

float angularDistance(const Quat& a, const Quat& b) {
    const float d = std::fabs(a.normalized().dot(b.normalized()));
    return 2.0f * std::acos(std::clamp(d, 0.0f, 1.0f));
}

}  // namespace semholo::geom
