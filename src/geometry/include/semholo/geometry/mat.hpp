// 3x3 and 4x4 matrices (row-major) for rigid transforms, camera
// projection and the small dense linear algebra used by the body model.
#pragma once

#include <array>
#include <cstddef>

#include "semholo/geometry/vec.hpp"

namespace semholo::geom {

struct Mat3 {
    // Row-major storage: m[row*3 + col].
    std::array<float, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

    static Mat3 identity() { return Mat3{}; }
    static Mat3 zero() {
        Mat3 r;
        r.m.fill(0.0f);
        return r;
    }
    static Mat3 diagonal(Vec3f d);
    // Outer product a * b^T.
    static Mat3 outer(Vec3f a, Vec3f b);
    // Skew-symmetric cross-product matrix [v]_x such that [v]_x w = v x w.
    static Mat3 skew(Vec3f v);
    static Mat3 rotationX(float radians);
    static Mat3 rotationY(float radians);
    static Mat3 rotationZ(float radians);
    // Rodrigues' formula: rotation about 'axisAngle' direction by its norm.
    static Mat3 fromAxisAngle(Vec3f axisAngle);

    float& operator()(std::size_t r, std::size_t c) { return m[r * 3 + c]; }
    float operator()(std::size_t r, std::size_t c) const { return m[r * 3 + c]; }

    Mat3 operator+(const Mat3& o) const;
    Mat3 operator-(const Mat3& o) const;
    Mat3 operator*(const Mat3& o) const;
    Mat3 operator*(float s) const;
    Vec3f operator*(Vec3f v) const;
    bool operator==(const Mat3&) const = default;

    Mat3 transposed() const;
    float determinant() const;
    // Inverse via adjugate. Returns identity if the matrix is singular;
    // callers that care must check determinant() themselves.
    Mat3 inverse() const;
    float trace() const { return m[0] + m[4] + m[8]; }
    Vec3f row(std::size_t r) const { return {m[r * 3], m[r * 3 + 1], m[r * 3 + 2]}; }
    Vec3f col(std::size_t c) const { return {m[c], m[3 + c], m[6 + c]}; }
};

struct Mat4 {
    // Row-major storage: m[row*4 + col].
    std::array<float, 16> m{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};

    static Mat4 identity() { return Mat4{}; }
    static Mat4 zero() {
        Mat4 r;
        r.m.fill(0.0f);
        return r;
    }
    static Mat4 translation(Vec3f t);
    static Mat4 scale(Vec3f s);
    // Rigid transform from rotation + translation.
    static Mat4 fromRT(const Mat3& rot, Vec3f t);

    float& operator()(std::size_t r, std::size_t c) { return m[r * 4 + c]; }
    float operator()(std::size_t r, std::size_t c) const { return m[r * 4 + c]; }

    Mat4 operator*(const Mat4& o) const;
    Mat4 operator+(const Mat4& o) const;
    Mat4 operator*(float s) const;
    Vec4f operator*(Vec4f v) const;
    bool operator==(const Mat4&) const = default;

    // Transform a point (w = 1, perspective divide applied).
    Vec3f transformPoint(Vec3f p) const;
    // Transform a direction (w = 0).
    Vec3f transformVector(Vec3f v) const;

    Mat4 transposed() const;
    // General 4x4 inverse (Gauss-Jordan). Returns identity when singular.
    Mat4 inverse() const;
    // Fast inverse valid only for rigid transforms (R | t).
    Mat4 rigidInverse() const;

    Mat3 rotation() const;
    Vec3f translationPart() const { return {m[3], m[7], m[11]}; }
};

}  // namespace semholo::geom
