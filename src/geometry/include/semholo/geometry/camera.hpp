// Pinhole camera model: intrinsics, extrinsics, projection/unprojection.
// Used by the synthetic RGB-D capture rig and by NeRF ray generation.
#pragma once

#include "semholo/geometry/transform.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::geom {

struct CameraIntrinsics {
    float fx{500.0f}, fy{500.0f};  // focal lengths in pixels
    float cx{320.0f}, cy{240.0f};  // principal point
    int width{640}, height{480};

    // Standard intrinsics for a given resolution and vertical field of view.
    static CameraIntrinsics fromFov(int width, int height, float fovYRadians);

    // Project a point in camera coordinates (+z forward) to pixel coords.
    // Returns false when the point is behind the camera.
    bool project(Vec3f pCam, Vec2f& pixel) const;

    // Back-project a pixel at given depth (z in camera frame) to a 3D point.
    Vec3f unproject(Vec2f pixel, float depth) const;

    // Ray through a pixel, in camera coordinates, normalized direction.
    Ray pixelRay(Vec2f pixel) const;

    bool inBounds(Vec2f pixel) const {
        return pixel.x >= 0.0f && pixel.y >= 0.0f && pixel.x < static_cast<float>(width) &&
               pixel.y < static_cast<float>(height);
    }
};

// A posed camera: worldFromCamera maps camera-frame points into the world.
struct Camera {
    CameraIntrinsics intrinsics{};
    RigidTransform worldFromCamera{};

    // Convenience: place a camera at 'eye' looking at 'target' with +y up.
    static Camera lookAt(Vec3f eye, Vec3f target, Vec3f up, CameraIntrinsics intr);

    Vec3f worldToCamera(Vec3f pWorld) const {
        return worldFromCamera.inverse().apply(pWorld);
    }
    Vec3f cameraToWorld(Vec3f pCam) const { return worldFromCamera.apply(pCam); }

    // Project a world point; returns false if behind the camera.
    bool projectWorld(Vec3f pWorld, Vec2f& pixel, float& depth) const;

    // World-space ray through a pixel.
    Ray pixelRayWorld(Vec2f pixel) const;
};

}  // namespace semholo::geom
