// Unit quaternions for joint rotations, plus the 6D-continuity helpers the
// paper's §3.1 discussion of rotation representations refers to.
#pragma once

#include "semholo/geometry/mat.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::geom {

struct Quat {
    float w{1}, x{0}, y{0}, z{0};

    constexpr Quat() = default;
    constexpr Quat(float w_, float x_, float y_, float z_) : w(w_), x(x_), y(y_), z(z_) {}

    static Quat identity() { return {}; }
    static Quat fromAxisAngle(Vec3f axisAngle);
    static Quat fromMatrix(const Mat3& m);
    // Shortest-arc rotation taking direction 'from' to direction 'to'.
    static Quat fromTwoVectors(Vec3f from, Vec3f to);

    Quat operator*(const Quat& o) const;
    Quat operator*(float s) const { return {w * s, x * s, y * s, z * s}; }
    Quat operator+(const Quat& o) const { return {w + o.w, x + o.x, y + o.y, z + o.z}; }
    bool operator==(const Quat&) const = default;

    Quat conjugate() const { return {w, -x, -y, -z}; }
    float norm() const;
    Quat normalized() const;
    float dot(const Quat& o) const { return w * o.w + x * o.x + y * o.y + z * o.z; }

    Vec3f rotate(Vec3f v) const;
    Mat3 toMatrix() const;
    Vec3f toAxisAngle() const;
};

// Spherical linear interpolation; takes the shorter arc.
Quat slerp(const Quat& a, const Quat& b, float t);

// Angular distance in radians between two rotations.
float angularDistance(const Quat& a, const Quat& b);

}  // namespace semholo::geom
