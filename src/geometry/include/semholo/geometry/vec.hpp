// Fixed-size vector types used throughout SemHolo.
//
// These are deliberately small value types: every operation is constexpr
// where possible and nothing allocates. Mesh/point-cloud data uses the
// float aliases (Vec3f); solvers that accumulate (Adam, calibration)
// use the double aliases.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace semholo::geom {

template <typename T>
struct Vec2 {
    T x{}, y{};

    constexpr Vec2() = default;
    constexpr Vec2(T x_, T y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(T s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(T s) const { return {x / s, y / s}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }
    constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
    constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
    constexpr Vec2& operator*=(T s) { x *= s; y *= s; return *this; }
    constexpr bool operator==(const Vec2&) const = default;

    constexpr T dot(Vec2 o) const { return x * o.x + y * o.y; }
    constexpr T norm2() const { return dot(*this); }
    T norm() const { return std::sqrt(norm2()); }
    Vec2 normalized() const {
        const T n = norm();
        return n > T(0) ? Vec2{x / n, y / n} : Vec2{};
    }
    constexpr T& operator[](std::size_t i) { return i == 0 ? x : y; }
    constexpr const T& operator[](std::size_t i) const { return i == 0 ? x : y; }
};

template <typename T>
struct Vec3 {
    T x{}, y{}, z{};

    constexpr Vec3() = default;
    constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
    constexpr Vec3& operator-=(Vec3 o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
    constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
    constexpr Vec3& operator/=(T s) { x /= s; y /= s; z /= s; return *this; }
    constexpr bool operator==(const Vec3&) const = default;

    constexpr T dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
    constexpr Vec3 cross(Vec3 o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    // Component-wise product; used for scaling fields and colour modulation.
    constexpr Vec3 cwise(Vec3 o) const { return {x * o.x, y * o.y, z * o.z}; }
    constexpr T norm2() const { return dot(*this); }
    T norm() const { return std::sqrt(norm2()); }
    Vec3 normalized() const {
        const T n = norm();
        return n > T(0) ? Vec3{x / n, y / n, z / n} : Vec3{};
    }
    constexpr T& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
    constexpr const T& operator[](std::size_t i) const {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr T minCoeff() const { return x < y ? (x < z ? x : z) : (y < z ? y : z); }
    constexpr T maxCoeff() const { return x > y ? (x > z ? x : z) : (y > z ? y : z); }

    template <typename U>
    constexpr Vec3<U> cast() const {
        return {static_cast<U>(x), static_cast<U>(y), static_cast<U>(z)};
    }
};

template <typename T>
struct Vec4 {
    T x{}, y{}, z{}, w{};

    constexpr Vec4() = default;
    constexpr Vec4(T x_, T y_, T z_, T w_) : x(x_), y(y_), z(z_), w(w_) {}
    constexpr Vec4(Vec3<T> v, T w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

    constexpr Vec4 operator+(Vec4 o) const { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
    constexpr Vec4 operator-(Vec4 o) const { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
    constexpr Vec4 operator*(T s) const { return {x * s, y * s, z * s, w * s}; }
    constexpr bool operator==(const Vec4&) const = default;

    constexpr T dot(Vec4 o) const { return x * o.x + y * o.y + z * o.z + w * o.w; }
    constexpr T norm2() const { return dot(*this); }
    T norm() const { return std::sqrt(norm2()); }
    constexpr Vec3<T> xyz() const { return {x, y, z}; }
    constexpr T& operator[](std::size_t i) {
        switch (i) { case 0: return x; case 1: return y; case 2: return z; default: return w; }
    }
    constexpr const T& operator[](std::size_t i) const {
        switch (i) { case 0: return x; case 1: return y; case 2: return z; default: return w; }
    }
};

template <typename T>
constexpr Vec2<T> operator*(T s, Vec2<T> v) { return v * s; }
template <typename T>
constexpr Vec3<T> operator*(T s, Vec3<T> v) { return v * s; }
template <typename T>
constexpr Vec4<T> operator*(T s, Vec4<T> v) { return v * s; }

template <typename T>
std::ostream& operator<<(std::ostream& os, Vec2<T> v) {
    return os << '(' << v.x << ", " << v.y << ')';
}
template <typename T>
std::ostream& operator<<(std::ostream& os, Vec3<T> v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}
template <typename T>
std::ostream& operator<<(std::ostream& os, Vec4<T> v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ", " << v.w << ')';
}

using Vec2f = Vec2<float>;
using Vec2d = Vec2<double>;
using Vec2i = Vec2<int>;
using Vec3f = Vec3<float>;
using Vec3d = Vec3<double>;
using Vec3i = Vec3<int>;
using Vec4f = Vec4<float>;
using Vec4d = Vec4<double>;

// Linear interpolation between two values; t in [0,1] maps a -> b.
template <typename V, typename T>
constexpr V lerp(const V& a, const V& b, T t) {
    return a + (b - a) * t;
}

template <typename T>
constexpr T clamp(T v, T lo, T hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace semholo::geom
