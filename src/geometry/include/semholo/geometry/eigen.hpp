// Dense symmetric eigendecomposition (cyclic Jacobi) for the small
// Gram matrices of the PCA/autoencoder baseline and calibration tasks.
#pragma once

#include <cstddef>
#include <vector>

namespace semholo::geom {

struct EigenDecomposition {
    // Eigenvalues in descending order.
    std::vector<double> values;
    // Column-major eigenvectors: vector k is vectors[k * n .. k * n + n).
    std::vector<double> vectors;
    std::size_t n{};

    const double* vector(std::size_t k) const { return &vectors[k * n]; }
};

// Decompose a dense symmetric n x n matrix (row-major). Off-diagonal
// asymmetry is averaged away. Classic cyclic Jacobi sweeps; suitable for
// n up to a few hundred.
EigenDecomposition jacobiEigenSymmetric(const std::vector<double>& matrix,
                                        std::size_t n, int maxSweeps = 64,
                                        double tolerance = 1e-12);

}  // namespace semholo::geom
