// Rigid transforms, rays, and axis-aligned bounding boxes.
#pragma once

#include <limits>

#include "semholo/geometry/mat.hpp"
#include "semholo/geometry/quat.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::geom {

// A rigid (SE3) transform stored as rotation quaternion + translation.
// Composes cheaper than Mat4 and never drifts off the manifold.
struct RigidTransform {
    Quat rotation{};
    Vec3f translation{};

    static RigidTransform identity() { return {}; }
    static RigidTransform fromMat4(const Mat4& m) {
        return {Quat::fromMatrix(m.rotation()), m.translationPart()};
    }

    Vec3f apply(Vec3f p) const { return rotation.rotate(p) + translation; }
    Vec3f applyVector(Vec3f v) const { return rotation.rotate(v); }

    RigidTransform operator*(const RigidTransform& o) const {
        return {(rotation * o.rotation).normalized(),
                rotation.rotate(o.translation) + translation};
    }

    RigidTransform inverse() const {
        const Quat ri = rotation.conjugate();
        return {ri, ri.rotate(-translation)};
    }

    Mat4 toMat4() const { return Mat4::fromRT(rotation.toMatrix(), translation); }
};

// Interpolate rigid transforms (slerp rotation, lerp translation).
inline RigidTransform interpolate(const RigidTransform& a, const RigidTransform& b,
                                  float t) {
    return {slerp(a.rotation, b.rotation, t), lerp(a.translation, b.translation, t)};
}

struct Ray {
    Vec3f origin{};
    Vec3f direction{};  // expected normalized

    Vec3f at(float t) const { return origin + direction * t; }
};

struct AABB {
    Vec3f lo{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
             std::numeric_limits<float>::max()};
    Vec3f hi{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
             std::numeric_limits<float>::lowest()};

    bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }
    void expand(Vec3f p) {
        lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
        hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
    }
    void expand(const AABB& b) {
        if (b.empty()) return;
        expand(b.lo);
        expand(b.hi);
    }
    // Enlarge by 'margin' on every side.
    void inflate(float margin) {
        if (empty()) return;
        const Vec3f m{margin, margin, margin};
        lo -= m;
        hi += m;
    }
    Vec3f center() const { return (lo + hi) * 0.5f; }
    Vec3f extent() const { return hi - lo; }
    float diagonal() const { return empty() ? 0.0f : extent().norm(); }
    bool contains(Vec3f p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
               p.z <= hi.z;
    }
    bool intersects(const AABB& b) const {
        return !(b.lo.x > hi.x || b.hi.x < lo.x || b.lo.y > hi.y || b.hi.y < lo.y ||
                 b.lo.z > hi.z || b.hi.z < lo.z);
    }
    // Slab test; returns entry/exit distances along the ray if hit.
    bool intersectRay(const Ray& r, float& tNear, float& tFar) const;
};

// Distance from point p to segment [a, b], plus the parameter of the
// closest point (0 at a, 1 at b). The workhorse of the capsule SDF.
float pointSegmentDistance(Vec3f p, Vec3f a, Vec3f b, float& tOut);

// Closest point on triangle (a, b, c) to p.
Vec3f closestPointOnTriangle(Vec3f p, Vec3f a, Vec3f b, Vec3f c);

}  // namespace semholo::geom
