// Portable SIMD layer for the batch-evaluation hot paths (body field
// blocks, codec filters).
//
// The types here are deliberately NOT intrinsics wrappers: f32xN is a
// fixed-width lane vector backed by the GCC/Clang vector extension
// (__attribute__((vector_size))), whose operators lower directly to the
// ISA the translation unit is compiled for — no reliance on the
// auto-vectorizer keeping lane arrays in registers. A plain lane-array
// fallback (countable loops) covers compilers without the extension.
// Kernels are written once against f32xN and compiled twice — a baseline
// TU (SSE2 on x86-64, NEON on aarch64, plain scalar elsewhere) and, on
// x86, an AVX2 TU — with a one-time runtime dispatch picking the widest
// kernel the CPU supports (see body::bodyBatchBackend).
//
// Determinism contract: every f32xN operation is a lane-wise IEEE-754
// single operation (add/sub/mul/div/sqrt/min/max/compare/blend), the
// project builds with -ffp-contract=off, and no kernel TU enables FMA —
// so a kernel's per-lane results are bit-identical to running the same
// scalar expression sequence per lane, on every backend. This is what
// lets the sparse reconstruction keep its dense-extraction byte-identity
// guarantee while the inner loop runs 8 lanes wide.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <cmath>

namespace semholo::geom::simd {

// ---- Backend identification ---------------------------------------------

enum class Backend : std::uint8_t { Scalar, Avx2, Neon };

inline const char* backendName(Backend b) {
    switch (b) {
        case Backend::Avx2: return "avx2";
        case Backend::Neon: return "neon";
        case Backend::Scalar: return "scalar";
    }
    return "unknown";
}

// True when the CPU can execute AVX2 kernels (x86 only; false elsewhere).
inline bool cpuHasAvx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

// SEMHOLO_SIMD=scalar forces every dispatch to the portable baseline
// kernel — the knob CI uses to keep the fallback path exercised on
// hardware that would otherwise always take the wide kernel.
inline bool forcedScalar() noexcept {
    static const bool forced = [] {
        const char* v = std::getenv("SEMHOLO_SIMD");
        return v != nullptr && std::strcmp(v, "scalar") == 0;
    }();
    return forced;
}

// The backend the *baseline* TU effectively runs with: the compiler
// lowers the lane loops to whatever the base ISA offers.
inline Backend baselineBackend() noexcept {
#if defined(__aarch64__) || defined(__ARM_NEON)
    return Backend::Neon;
#else
    return Backend::Scalar;
#endif
}

// ---- f32xN / b32xN -------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define SEMHOLO_SIMD_VECEXT 1
#endif

#if SEMHOLO_SIMD_VECEXT

// Vector values only cross the (always-inlined) helper boundaries
// below, never a real ABI boundary, so the "vector return without
// <ISA> enabled changes the ABI" note on narrow-ISA TUs is noise.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

// vector_size must be a non-dependent constant, so the widths get
// explicit specializations instead of a computed size.
template <int N>
struct VecStorage;
template <>
struct VecStorage<4> {
    typedef float F __attribute__((vector_size(16)));
    typedef std::int32_t I __attribute__((vector_size(16)));
    // Braced init is the spelling the compiler turns into one broadcast
    // instruction; a lane-store loop degrades to N inserts.
    static F splat(float v) { return F{v, v, v, v}; }
};
template <>
struct VecStorage<8> {
    typedef float F __attribute__((vector_size(32)));
    typedef std::int32_t I __attribute__((vector_size(32)));
    static F splat(float v) { return F{v, v, v, v, v, v, v, v}; }
};
template <>
struct VecStorage<16> {
    typedef float F __attribute__((vector_size(64)));
    typedef std::int32_t I __attribute__((vector_size(64)));
    static F splat(float v) {
        return F{v, v, v, v, v, v, v, v, v, v, v, v, v, v, v, v};
    }
};

// Width-agnostic float lanes on the GNU vector extension: 'lane' is a
// true vector value, so +,-,*,/ and the comparisons below are single
// instructions at the TU's ISA width, while lane[i] subscripting still
// reads/writes individual lanes. Every operation is the lane-wise
// IEEE-754 single op the scalar expression would run.
template <int N>
struct f32xN {
    static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be a power of two");
    typedef typename VecStorage<N>::F V;
    V lane;

    static f32xN load(const float* p) {
        f32xN r;
        std::memcpy(&r.lane, p, sizeof r.lane);
        return r;
    }
    static f32xN broadcast(float v) { return {VecStorage<N>::splat(v)}; }
    void store(float* p) const { std::memcpy(p, &lane, sizeof lane); }

    f32xN operator+(f32xN o) const { return {lane + o.lane}; }
    f32xN operator-(f32xN o) const { return {lane - o.lane}; }
    f32xN operator*(f32xN o) const { return {lane * o.lane}; }
    f32xN operator/(f32xN o) const { return {lane / o.lane}; }
};

// Lane-wise boolean mask companion (all-ones / all-zero int lanes).
template <int N>
struct b32xN {
    typedef typename VecStorage<N>::I V;
    V lane;

    bool any() const {
        std::int32_t acc = 0;
        for (int i = 0; i < N; ++i) acc |= lane[i];
        return acc != 0;
    }
    bool all() const {
        std::int32_t acc = -1;
        for (int i = 0; i < N; ++i) acc &= lane[i];
        return acc == -1;
    }
    int count() const {
        // Lanes are all-ones (-1) or zero, so the lane sum is -count —
        // a plain reduction the compiler lowers without per-lane tests.
        std::int32_t acc = 0;
        for (int i = 0; i < N; ++i) acc += lane[i];
        return -acc;
    }
    b32xN operator|(b32xN o) const { return {lane | o.lane}; }
    b32xN operator&(b32xN o) const { return {lane & o.lane}; }
    b32xN operator~() const { return {~lane}; }
};

// min/max keep the exact scalar comparison semantics (a < b ? a : b),
// which is also precisely x86 minps/maxps and NEON fminnm-free vmin.
template <int N>
inline f32xN<N> min(f32xN<N> a, f32xN<N> b) {
    return {a.lane < b.lane ? a.lane : b.lane};
}
template <int N>
inline f32xN<N> max(f32xN<N> a, f32xN<N> b) {
    return {a.lane > b.lane ? a.lane : b.lane};
}
template <int N>
inline f32xN<N> sqrt(f32xN<N> a) {
    f32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = std::sqrt(a.lane[i]);
    return r;
}
// clamp to [lo, hi] with the same comparison sequence as geom::clamp
// (v < lo ? lo : (v > hi ? hi : v)).
template <int N>
inline f32xN<N> clamp(f32xN<N> v, f32xN<N> lo, f32xN<N> hi) {
    return {v.lane < lo.lane ? lo.lane
                             : (v.lane > hi.lane ? hi.lane : v.lane)};
}

template <int N>
inline b32xN<N> cmpLt(f32xN<N> a, f32xN<N> b) {
    return {a.lane < b.lane};
}
template <int N>
inline b32xN<N> cmpGt(f32xN<N> a, f32xN<N> b) {
    return {a.lane > b.lane};
}

// Lane blend: mask ? a : b.
template <int N>
inline f32xN<N> select(b32xN<N> mask, f32xN<N> a, f32xN<N> b) {
    return {mask.lane ? a.lane : b.lane};
}

#pragma GCC diagnostic pop

#else  // !SEMHOLO_SIMD_VECEXT — portable lane-array fallback

// Width-agnostic float lanes. All member loops have a compile-time trip
// count so the auto-vectorizer turns each into one (or, below the ISA
// width, a few) vector ops once the enclosing kernel is inlined.
template <int N>
struct f32xN {
    static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be a power of two");
    float lane[N];

    static f32xN load(const float* p) {
        f32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = p[i];
        return r;
    }
    static f32xN broadcast(float v) {
        f32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = v;
        return r;
    }
    void store(float* p) const {
        for (int i = 0; i < N; ++i) p[i] = lane[i];
    }

    f32xN operator+(f32xN o) const {
        f32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = lane[i] + o.lane[i];
        return r;
    }
    f32xN operator-(f32xN o) const {
        f32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = lane[i] - o.lane[i];
        return r;
    }
    f32xN operator*(f32xN o) const {
        f32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = lane[i] * o.lane[i];
        return r;
    }
    f32xN operator/(f32xN o) const {
        f32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = lane[i] / o.lane[i];
        return r;
    }
};

// Lane-wise boolean mask companion (all-ones / all-zero int lanes).
template <int N>
struct b32xN {
    std::int32_t lane[N];

    bool any() const {
        std::int32_t acc = 0;
        for (int i = 0; i < N; ++i) acc |= lane[i];
        return acc != 0;
    }
    bool all() const {
        std::int32_t acc = -1;
        for (int i = 0; i < N; ++i) acc &= lane[i];
        return acc == -1;
    }
    int count() const {
        int c = 0;
        for (int i = 0; i < N; ++i) c += lane[i] != 0 ? 1 : 0;
        return c;
    }
    b32xN operator|(b32xN o) const {
        b32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = lane[i] | o.lane[i];
        return r;
    }
    b32xN operator&(b32xN o) const {
        b32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = lane[i] & o.lane[i];
        return r;
    }
    b32xN operator~() const {
        b32xN r;
        for (int i = 0; i < N; ++i) r.lane[i] = ~lane[i];
        return r;
    }
};

template <int N>
inline f32xN<N> min(f32xN<N> a, f32xN<N> b) {
    f32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
}
template <int N>
inline f32xN<N> max(f32xN<N> a, f32xN<N> b) {
    f32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
}
template <int N>
inline f32xN<N> sqrt(f32xN<N> a) {
    f32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = std::sqrt(a.lane[i]);
    return r;
}
// clamp to [lo, hi] with the same comparison sequence as geom::clamp
// (v < lo ? lo : (v > hi ? hi : v)).
template <int N>
inline f32xN<N> clamp(f32xN<N> v, f32xN<N> lo, f32xN<N> hi) {
    f32xN<N> r;
    for (int i = 0; i < N; ++i)
        r.lane[i] = v.lane[i] < lo.lane[i]
                        ? lo.lane[i]
                        : (v.lane[i] > hi.lane[i] ? hi.lane[i] : v.lane[i]);
    return r;
}

template <int N>
inline b32xN<N> cmpLt(f32xN<N> a, f32xN<N> b) {
    b32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = a.lane[i] < b.lane[i] ? -1 : 0;
    return r;
}
template <int N>
inline b32xN<N> cmpGt(f32xN<N> a, f32xN<N> b) {
    b32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = a.lane[i] > b.lane[i] ? -1 : 0;
    return r;
}

// Lane blend: mask ? a : b.
template <int N>
inline f32xN<N> select(b32xN<N> mask, f32xN<N> a, f32xN<N> b) {
    f32xN<N> r;
    for (int i = 0; i < N; ++i) r.lane[i] = mask.lane[i] != 0 ? a.lane[i] : b.lane[i];
    return r;
}

#endif  // SEMHOLO_SIMD_VECEXT

// ---- Bit-matrix transpose (codec bitshuffle kernel) ----------------------

// Transpose an 8x8 bit matrix held row-major in a 64-bit word: input bit
// (row r, column c) = bit (8*r + c) moves to (8*c + r). Hacker's Delight
// 7-2; three swap rounds instead of 64 single-bit probes, which is what
// takes the bitshuffle filter from tens of MB/s to GB/s.
inline std::uint64_t bitTranspose8x8(std::uint64_t x) noexcept {
    std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
    x = x ^ t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
    x = x ^ t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
    x = x ^ t ^ (t << 28);
    return x;
}

}  // namespace semholo::geom::simd
