#include "semholo/mesh/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace semholo::mesh {

bool saveOBJ(const TriMesh& mesh, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    f << "# SemHolo mesh: " << mesh.vertexCount() << " vertices, "
      << mesh.triangleCount() << " triangles\n";
    for (const Vec3f& v : mesh.vertices) f << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
    for (const Vec3f& n : mesh.normals)
        f << "vn " << n.x << ' ' << n.y << ' ' << n.z << '\n';
    for (const Vec2f& t : mesh.uvs) f << "vt " << t.x << ' ' << t.y << '\n';
    const bool vn = mesh.hasNormals();
    const bool vt = mesh.hasUVs();
    for (const Triangle& t : mesh.triangles) {
        f << 'f';
        for (const std::uint32_t idx : {t.a, t.b, t.c}) {
            const std::uint32_t i = idx + 1;
            f << ' ' << i;
            if (vt || vn) {
                f << '/';
                if (vt) f << i;
                if (vn) f << '/' << i;
            }
        }
        f << '\n';
    }
    return f.good();
}

bool loadOBJ(const std::string& path, TriMesh& out) {
    std::ifstream f(path);
    if (!f) return false;
    out.clear();
    std::string line;
    while (std::getline(f, line)) {
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "v") {
            Vec3f v;
            ss >> v.x >> v.y >> v.z;
            out.vertices.push_back(v);
        } else if (tag == "vn") {
            Vec3f n;
            ss >> n.x >> n.y >> n.z;
            out.normals.push_back(n);
        } else if (tag == "vt") {
            Vec2f t;
            ss >> t.x >> t.y;
            out.uvs.push_back(t);
        } else if (tag == "f") {
            std::vector<std::uint32_t> face;
            std::string vert;
            while (ss >> vert) {
                // Accept "i", "i/j", "i//k", "i/j/k"; only the position
                // index is used (attributes are per-vertex here).
                const std::size_t slash = vert.find('/');
                const long idx = std::stol(vert.substr(0, slash));
                if (idx > 0)
                    face.push_back(static_cast<std::uint32_t>(idx - 1));
                else
                    face.push_back(
                        static_cast<std::uint32_t>(out.vertices.size() + idx));
            }
            // Triangulate as a fan.
            for (std::size_t i = 2; i < face.size(); ++i)
                out.triangles.push_back({face[0], face[i - 1], face[i]});
        }
    }
    if (out.normals.size() != out.vertices.size()) out.normals.clear();
    if (out.uvs.size() != out.vertices.size()) out.uvs.clear();
    return true;
}

bool savePLY(const TriMesh& mesh, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    const bool colors = mesh.hasColors();
    f << "ply\nformat ascii 1.0\ncomment SemHolo mesh\n";
    f << "element vertex " << mesh.vertexCount() << '\n';
    f << "property float x\nproperty float y\nproperty float z\n";
    if (colors)
        f << "property uchar red\nproperty uchar green\nproperty uchar blue\n";
    f << "element face " << mesh.triangleCount() << '\n';
    f << "property list uchar int vertex_indices\nend_header\n";
    for (std::size_t i = 0; i < mesh.vertices.size(); ++i) {
        const Vec3f& v = mesh.vertices[i];
        f << v.x << ' ' << v.y << ' ' << v.z;
        if (colors) {
            const Vec3f& c = mesh.colors[i];
            auto b = [](float x) {
                return static_cast<int>(geom::clamp(x, 0.0f, 1.0f) * 255.0f + 0.5f);
            };
            f << ' ' << b(c.x) << ' ' << b(c.y) << ' ' << b(c.z);
        }
        f << '\n';
    }
    for (const Triangle& t : mesh.triangles)
        f << "3 " << t.a << ' ' << t.b << ' ' << t.c << '\n';
    return f.good();
}

bool savePLY(const PointCloud& cloud, const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    const bool colors = cloud.hasColors();
    const bool normals = cloud.hasNormals();
    f << "ply\nformat ascii 1.0\ncomment SemHolo point cloud\n";
    f << "element vertex " << cloud.size() << '\n';
    f << "property float x\nproperty float y\nproperty float z\n";
    if (normals) f << "property float nx\nproperty float ny\nproperty float nz\n";
    if (colors)
        f << "property uchar red\nproperty uchar green\nproperty uchar blue\n";
    f << "end_header\n";
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3f& p = cloud.points[i];
        f << p.x << ' ' << p.y << ' ' << p.z;
        if (normals) {
            const Vec3f& n = cloud.normals[i];
            f << ' ' << n.x << ' ' << n.y << ' ' << n.z;
        }
        if (colors) {
            const Vec3f& c = cloud.colors[i];
            auto b = [](float x) {
                return static_cast<int>(geom::clamp(x, 0.0f, 1.0f) * 255.0f + 0.5f);
            };
            f << ' ' << b(c.x) << ' ' << b(c.y) << ' ' << b(c.z);
        }
        f << '\n';
    }
    return f.good();
}

bool loadPLY(const std::string& path, TriMesh& out) {
    std::ifstream f(path);
    if (!f) return false;
    out.clear();
    std::string line;
    std::size_t vertexCount = 0, faceCount = 0;
    bool hasColor = false;
    // Header.
    if (!std::getline(f, line) || line != "ply") return false;
    while (std::getline(f, line) && line != "end_header") {
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "element") {
            std::string what;
            std::size_t count;
            ss >> what >> count;
            if (what == "vertex") vertexCount = count;
            if (what == "face") faceCount = count;
        } else if (tag == "property") {
            std::string type, name;
            ss >> type >> name;
            if (name == "red") hasColor = true;
        } else if (tag == "format") {
            std::string fmt;
            ss >> fmt;
            if (fmt != "ascii") return false;  // binary PLY unsupported
        }
    }
    out.vertices.reserve(vertexCount);
    for (std::size_t i = 0; i < vertexCount; ++i) {
        if (!std::getline(f, line)) return false;
        std::istringstream ss(line);
        Vec3f v;
        ss >> v.x >> v.y >> v.z;
        out.vertices.push_back(v);
        if (hasColor) {
            int r, g, b;
            ss >> r >> g >> b;
            out.colors.push_back({static_cast<float>(r) / 255.0f,
                                  static_cast<float>(g) / 255.0f,
                                  static_cast<float>(b) / 255.0f});
        }
    }
    out.triangles.reserve(faceCount);
    for (std::size_t i = 0; i < faceCount; ++i) {
        if (!std::getline(f, line)) return false;
        std::istringstream ss(line);
        int n;
        ss >> n;
        std::vector<std::uint32_t> face(static_cast<std::size_t>(n));
        for (auto& idx : face) ss >> idx;
        for (std::size_t j = 2; j < face.size(); ++j)
            out.triangles.push_back({face[0], face[j - 1], face[j]});
    }
    return true;
}

}  // namespace semholo::mesh
