#include "semholo/mesh/blocksampler.hpp"

#include <algorithm>
#include <cmath>

#include "semholo/core/thread_pool.hpp"

namespace semholo::mesh {

void FieldSampleStats::merge(const FieldSampleStats& other) {
    blocksTotal += other.blocksTotal;
    blocksSampled += other.blocksSampled;
    blocksSkipped += other.blocksSkipped;
    blocksCached += other.blocksCached;
    blocksCoarseFilled += other.blocksCoarseFilled;
    nodesEvaluated += other.nodesEvaluated;
    nodesTotal += other.nodesTotal;
    certTests += other.certTests;
}

BlockSampler::BlockSampler(VoxelGrid& grid, int blockSize)
    : grid_(grid), blockSize_(std::max(1, blockSize)) {
    const Vec3i res = grid.resolution();
    auto div = [this](int nodes) { return (nodes + blockSize_ - 1) / blockSize_; };
    blocks_ = {div(res.x + 1), div(res.y + 1), div(res.z + 1)};
    // Guard region: blockSize-1 cells of owned node span plus one cell on
    // each side. Half-diagonal of a (blockSize+1)-cell box.
    const Vec3f cell = grid.cellSize();
    const float half = 0.5f * static_cast<float>(blockSize_ + 1);
    guardRadius_ = (cell * half).norm();
    // Unknown until a block is processed: extraction must visit it.
    surfaceFree_.assign(static_cast<std::size_t>(blockCount()), 0);
}

Vec3i BlockSampler::blockCoord(int block) const {
    const int bx = block % blocks_.x;
    const int by = (block / blocks_.x) % blocks_.y;
    const int bz = block / (blocks_.x * blocks_.y);
    return {bx, by, bz};
}

BlockSampler::BlockRange BlockSampler::blockRange(int block) const {
    const Vec3i b = blockCoord(block);
    const Vec3i res = grid_.resolution();
    // Each block owns blockSize_ node planes starting at b*blockSize_;
    // the arithmetic ceiling in the constructor guarantees the last block
    // covers the final (res-th) node plane.
    auto hi = [this](int begin, int nodes) {
        return std::min(begin + blockSize_ - 1, nodes);
    };
    const Vec3i lo{b.x * blockSize_, b.y * blockSize_, b.z * blockSize_};
    return {lo, {hi(lo.x, res.x), hi(lo.y, res.y), hi(lo.z, res.z)}};
}

geom::AABB BlockSampler::blockGuardBounds(int block) const {
    const BlockRange r = blockRange(block);
    const Vec3f cell = grid_.cellSize();
    geom::AABB box;
    box.expand(grid_.nodePosition(r.nodeLo.x, r.nodeLo.y, r.nodeLo.z) -
               cell);
    box.expand(grid_.nodePosition(r.nodeHi.x, r.nodeHi.y, r.nodeHi.z) +
               cell);
    return box;
}

Vec3f BlockSampler::blockCenter(int block) const {
    const BlockRange r = blockRange(block);
    const Vec3f lo = grid_.nodePosition(r.nodeLo.x, r.nodeLo.y, r.nodeLo.z);
    const Vec3f hi = grid_.nodePosition(r.nodeHi.x, r.nodeHi.y, r.nodeHi.z);
    return (lo + hi) * 0.5f;
}

std::uint64_t BlockSampler::ownedNodes(int block) const {
    const BlockRange r = blockRange(block);
    return static_cast<std::uint64_t>(r.nodeHi.x - r.nodeLo.x + 1) *
           static_cast<std::uint64_t>(r.nodeHi.y - r.nodeLo.y + 1) *
           static_cast<std::uint64_t>(r.nodeHi.z - r.nodeLo.z + 1);
}

void BlockSampler::fillBlock(int block, float value) {
    const BlockRange r = blockRange(block);
    for (int z = r.nodeLo.z; z <= r.nodeHi.z; ++z)
        for (int y = r.nodeLo.y; y <= r.nodeHi.y; ++y)
            for (int x = r.nodeLo.x; x <= r.nodeHi.x; ++x)
                grid_.at(x, y, z) = value;
}

void BlockSampler::nodeBall(Vec3i lo, Vec3i hi, Vec3f& center,
                            float& radius) const {
    // Guard bounds are monotone in block coordinates, so the union over
    // the range is the box spanned by the two corner blocks' guards.
    const geom::AABB first = blockGuardBounds(blockIndex(lo));
    const geom::AABB last = blockGuardBounds(blockIndex(hi));
    center = (first.lo + last.hi) * 0.5f;
    radius = (last.hi - center).norm();
}

void BlockSampler::processBlock(int block, const ScalarField& field,
                                const FieldSampleOptions& options,
                                FieldSampleStats& stats) {
    const BlockRange r = blockRange(block);
    const auto owned =
        static_cast<std::uint64_t>(r.nodeHi.x - r.nodeLo.x + 1) *
        static_cast<std::uint64_t>(r.nodeHi.y - r.nodeLo.y + 1) *
        static_cast<std::uint64_t>(r.nodeHi.z - r.nodeLo.z + 1);
    stats.nodesTotal += owned;

    if (options.blockPruning) {
        // The true center of the block's guard region can sit past the
        // owned-node midpoint for edge blocks; using the owned-node
        // midpoint with the full guard radius stays conservative because
        // the guard region never extends more than guardRadius_ from it.
        const Vec3f center = blockCenter(block);
        float d = 0.0f;
        bool certified;
        if (options.certificate) {
            // Analytic certificate: no field probe needed to decide.
            ++stats.certTests;
            certified = options.certificate(center, guardRadius_);
            if (certified) {
                d = field(center);
                ++stats.nodesEvaluated;
            }
        } else {
            d = field(center);
            ++stats.nodesEvaluated;
            certified =
                std::fabs(d) > options.lipschitz * guardRadius_ + options.margin;
        }
        if (certified) {
            // Fill with the (correctly signed) center value so extraction
            // cells that straddle this block see a consistent field.
            fillBlock(block, d);
            ++stats.blocksSkipped;
            surfaceFree_[static_cast<std::size_t>(block)] = 1;
            return;
        }
    }

    if (options.batch) {
        // SoA batch evaluation: one call for the whole block instead of
        // one std::function dispatch per node. Buffers are thread_local
        // so parallel sampling allocates once per worker.
        static thread_local std::vector<float> xs, ys, zs, vals;
        const auto n = static_cast<std::size_t>(owned);
        xs.resize(n);
        ys.resize(n);
        zs.resize(n);
        vals.resize(n);
        std::size_t i = 0;
        for (int z = r.nodeLo.z; z <= r.nodeHi.z; ++z)
            for (int y = r.nodeLo.y; y <= r.nodeHi.y; ++y)
                for (int x = r.nodeLo.x; x <= r.nodeHi.x; ++x, ++i) {
                    const Vec3f p = grid_.nodePosition(x, y, z);
                    xs[i] = p.x;
                    ys[i] = p.y;
                    zs[i] = p.z;
                }
        options.batch(xs.data(), ys.data(), zs.data(), vals.data(), n);
        i = 0;
        for (int z = r.nodeLo.z; z <= r.nodeHi.z; ++z)
            for (int y = r.nodeLo.y; y <= r.nodeHi.y; ++y)
                for (int x = r.nodeLo.x; x <= r.nodeHi.x; ++x, ++i)
                    grid_.at(x, y, z) = vals[i];
    } else {
        for (int z = r.nodeLo.z; z <= r.nodeHi.z; ++z)
            for (int y = r.nodeLo.y; y <= r.nodeHi.y; ++y)
                for (int x = r.nodeLo.x; x <= r.nodeHi.x; ++x)
                    grid_.at(x, y, z) = field(grid_.nodePosition(x, y, z));
    }
    stats.nodesEvaluated += owned;
    ++stats.blocksSampled;
    surfaceFree_[static_cast<std::size_t>(block)] = 0;
}

void BlockSampler::descend(Vec3i lo, Vec3i hi,
                           const std::vector<std::uint8_t>& dirtyLeaf,
                           const ScalarField& field,
                           const FieldSampleOptions& options,
                           FieldSampleStats& stats, std::vector<int>& work,
                           std::vector<CoarseFill>& fills) {
    // Skip subtrees with no dirty block (their leaves were already
    // accounted as cached by the prefilter).
    bool anyDirty = false;
    for (int z = lo.z; z <= hi.z && !anyDirty; ++z)
        for (int y = lo.y; y <= hi.y && !anyDirty; ++y)
            for (int x = lo.x; x <= hi.x && !anyDirty; ++x)
                anyDirty = dirtyLeaf[static_cast<std::size_t>(
                               blockIndex({x, y, z}))] != 0;
    if (!anyDirty) return;

    if (lo.x == hi.x && lo.y == hi.y && lo.z == hi.z) {
        // Single block: processBlock runs the leaf certificate as usual.
        work.push_back(blockIndex(lo));
        return;
    }

    // One coarse test covers the whole range: the node ball contains
    // every descendant's guard region, so a certificate that holds here
    // holds for each block individually — and the field's sign is
    // constant across the ball, so one probe's value is a valid fill for
    // every dirty block beneath (extraction cells touching filled nodes
    // lie wholly inside the certified region; see the header proof).
    Vec3f center;
    float radius;
    nodeBall(lo, hi, center, radius);
    ++stats.certTests;
    if (options.certificate(center, radius)) {
        const float d = field(center);
        ++stats.nodesEvaluated;
        for (int z = lo.z; z <= hi.z; ++z)
            for (int y = lo.y; y <= hi.y; ++y)
                for (int x = lo.x; x <= hi.x; ++x) {
                    const int b = blockIndex({x, y, z});
                    if (dirtyLeaf[static_cast<std::size_t>(b)] == 0) continue;
                    fills.push_back({b, d});
                    ++stats.blocksSkipped;
                    ++stats.blocksCoarseFilled;
                    stats.nodesTotal += ownedNodes(b);
                    surfaceFree_[static_cast<std::size_t>(b)] = 1;
                }
        return;
    }

    // Not certifiable at this scale: recurse into up to eight octants.
    const Vec3i mid{lo.x + (hi.x - lo.x) / 2, lo.y + (hi.y - lo.y) / 2,
                    lo.z + (hi.z - lo.z) / 2};
    for (int oz = 0; oz < 2; ++oz)
        for (int oy = 0; oy < 2; ++oy)
            for (int ox = 0; ox < 2; ++ox) {
                const Vec3i clo{ox ? mid.x + 1 : lo.x, oy ? mid.y + 1 : lo.y,
                                oz ? mid.z + 1 : lo.z};
                const Vec3i chi{ox ? hi.x : mid.x, oy ? hi.y : mid.y,
                                oz ? hi.z : mid.z};
                if (clo.x > chi.x || clo.y > chi.y || clo.z > chi.z) continue;
                descend(clo, chi, dirtyLeaf, field, options, stats, work, fills);
            }
}

FieldSampleStats BlockSampler::sample(const ScalarField& field,
                                      const FieldSampleOptions& options,
                                      const std::vector<std::uint8_t>* dirty) {
    FieldSampleStats total;
    const int count = blockCount();
    total.blocksTotal = static_cast<std::size_t>(count);

    std::vector<int> work;
    work.reserve(static_cast<std::size_t>(count));
    const bool useOctree = options.blockPruning && options.hierarchical &&
                           static_cast<bool>(options.certificate) && count > 1;
    if (useOctree) {
        std::vector<std::uint8_t> dirtyLeaf(static_cast<std::size_t>(count), 1);
        for (int b = 0; b < count; ++b) {
            if (dirty != nullptr && (*dirty)[static_cast<std::size_t>(b)] == 0) {
                dirtyLeaf[static_cast<std::size_t>(b)] = 0;
                ++total.blocksCached;
                total.nodesTotal += ownedNodes(b);
            }
        }
        // Serial descent decides every block's fate (cert tests are a few
        // capsule-distance bounds each); the expensive full samples fan
        // out below. Coarse fills are applied here — memory-bound writes
        // whose values never depend on scheduling.
        std::vector<CoarseFill> fills;
        descend({0, 0, 0}, {blocks_.x - 1, blocks_.y - 1, blocks_.z - 1},
                dirtyLeaf, field, options, total, work, fills);
        for (const CoarseFill& f : fills) fillBlock(f.block, f.value);
    } else {
        for (int b = 0; b < count; ++b) {
            if (dirty != nullptr && (*dirty)[static_cast<std::size_t>(b)] == 0) {
                ++total.blocksCached;
                total.nodesTotal += ownedNodes(b);
                continue;
            }
            work.push_back(b);
        }
    }

    if (options.pool == nullptr || options.pool->size() <= 1 || work.size() <= 1) {
        for (const int b : work) processBlock(b, field, options, total);
        return total;
    }

    // Chunk the block list so task overhead stays negligible. Chunk
    // boundaries may vary with pool size, but every node value is a pure
    // function of (field, block), so the sampled grid is identical for
    // any worker count; the stats are sums and commute.
    core::ThreadPool& pool = *options.pool;
    const std::size_t chunks =
        std::min(work.size(), std::max<std::size_t>(1, pool.size() * 8));
    std::vector<FieldSampleStats> perChunk(chunks);
    pool.parallelFor(chunks, [&](std::size_t c) {
        const std::size_t begin = work.size() * c / chunks;
        const std::size_t end = work.size() * (c + 1) / chunks;
        for (std::size_t i = begin; i < end; ++i)
            processBlock(work[i], field, options, perChunk[c]);
    });
    for (const FieldSampleStats& s : perChunk) {
        total.blocksSampled += s.blocksSampled;
        total.blocksSkipped += s.blocksSkipped;
        total.nodesEvaluated += s.nodesEvaluated;
        total.nodesTotal += s.nodesTotal;
        total.certTests += s.certTests;
    }
    return total;
}

}  // namespace semholo::mesh
