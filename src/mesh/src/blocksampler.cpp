#include "semholo/mesh/blocksampler.hpp"

#include <algorithm>
#include <cmath>

#include "semholo/core/thread_pool.hpp"

namespace semholo::mesh {

void FieldSampleStats::merge(const FieldSampleStats& other) {
    blocksTotal += other.blocksTotal;
    blocksSampled += other.blocksSampled;
    blocksSkipped += other.blocksSkipped;
    blocksCached += other.blocksCached;
    nodesEvaluated += other.nodesEvaluated;
    nodesTotal += other.nodesTotal;
}

BlockSampler::BlockSampler(VoxelGrid& grid, int blockSize)
    : grid_(grid), blockSize_(std::max(1, blockSize)) {
    const Vec3i res = grid.resolution();
    auto div = [this](int nodes) { return (nodes + blockSize_ - 1) / blockSize_; };
    blocks_ = {div(res.x + 1), div(res.y + 1), div(res.z + 1)};
    // Guard region: blockSize-1 cells of owned node span plus one cell on
    // each side. Half-diagonal of a (blockSize+1)-cell box.
    const Vec3f cell = grid.cellSize();
    const float half = 0.5f * static_cast<float>(blockSize_ + 1);
    guardRadius_ = (cell * half).norm();
    // Unknown until a block is processed: extraction must visit it.
    surfaceFree_.assign(static_cast<std::size_t>(blockCount()), 0);
}

Vec3i BlockSampler::blockCoord(int block) const {
    const int bx = block % blocks_.x;
    const int by = (block / blocks_.x) % blocks_.y;
    const int bz = block / (blocks_.x * blocks_.y);
    return {bx, by, bz};
}

BlockSampler::BlockRange BlockSampler::blockRange(int block) const {
    const Vec3i b = blockCoord(block);
    const Vec3i res = grid_.resolution();
    // Each block owns blockSize_ node planes starting at b*blockSize_;
    // the arithmetic ceiling in the constructor guarantees the last block
    // covers the final (res-th) node plane.
    auto hi = [this](int begin, int nodes) {
        return std::min(begin + blockSize_ - 1, nodes);
    };
    const Vec3i lo{b.x * blockSize_, b.y * blockSize_, b.z * blockSize_};
    return {lo, {hi(lo.x, res.x), hi(lo.y, res.y), hi(lo.z, res.z)}};
}

geom::AABB BlockSampler::blockGuardBounds(int block) const {
    const BlockRange r = blockRange(block);
    const Vec3f cell = grid_.cellSize();
    geom::AABB box;
    box.expand(grid_.nodePosition(r.nodeLo.x, r.nodeLo.y, r.nodeLo.z) -
               cell);
    box.expand(grid_.nodePosition(r.nodeHi.x, r.nodeHi.y, r.nodeHi.z) +
               cell);
    return box;
}

Vec3f BlockSampler::blockCenter(int block) const {
    const BlockRange r = blockRange(block);
    const Vec3f lo = grid_.nodePosition(r.nodeLo.x, r.nodeLo.y, r.nodeLo.z);
    const Vec3f hi = grid_.nodePosition(r.nodeHi.x, r.nodeHi.y, r.nodeHi.z);
    return (lo + hi) * 0.5f;
}

void BlockSampler::processBlock(int block, const ScalarField& field,
                                const FieldSampleOptions& options,
                                FieldSampleStats& stats) {
    const BlockRange r = blockRange(block);
    const auto owned =
        static_cast<std::uint64_t>(r.nodeHi.x - r.nodeLo.x + 1) *
        static_cast<std::uint64_t>(r.nodeHi.y - r.nodeLo.y + 1) *
        static_cast<std::uint64_t>(r.nodeHi.z - r.nodeLo.z + 1);
    stats.nodesTotal += owned;

    if (options.blockPruning) {
        // The true center of the block's guard region can sit past the
        // owned-node midpoint for edge blocks; using the owned-node
        // midpoint with the full guard radius stays conservative because
        // the guard region never extends more than guardRadius_ from it.
        const Vec3f center = blockCenter(block);
        float d = 0.0f;
        bool certified;
        if (options.certificate) {
            // Analytic certificate: no field probe needed to decide.
            certified = options.certificate(center, guardRadius_);
            if (certified) {
                d = field(center);
                ++stats.nodesEvaluated;
            }
        } else {
            d = field(center);
            ++stats.nodesEvaluated;
            certified =
                std::fabs(d) > options.lipschitz * guardRadius_ + options.margin;
        }
        if (certified) {
            // Fill with the (correctly signed) center value so extraction
            // cells that straddle this block see a consistent field.
            for (int z = r.nodeLo.z; z <= r.nodeHi.z; ++z)
                for (int y = r.nodeLo.y; y <= r.nodeHi.y; ++y)
                    for (int x = r.nodeLo.x; x <= r.nodeHi.x; ++x)
                        grid_.at(x, y, z) = d;
            ++stats.blocksSkipped;
            surfaceFree_[static_cast<std::size_t>(block)] = 1;
            return;
        }
    }

    for (int z = r.nodeLo.z; z <= r.nodeHi.z; ++z)
        for (int y = r.nodeLo.y; y <= r.nodeHi.y; ++y)
            for (int x = r.nodeLo.x; x <= r.nodeHi.x; ++x)
                grid_.at(x, y, z) = field(grid_.nodePosition(x, y, z));
    stats.nodesEvaluated += owned;
    ++stats.blocksSampled;
    surfaceFree_[static_cast<std::size_t>(block)] = 0;
}

FieldSampleStats BlockSampler::sample(const ScalarField& field,
                                      const FieldSampleOptions& options,
                                      const std::vector<std::uint8_t>* dirty) {
    FieldSampleStats total;
    const int count = blockCount();
    total.blocksTotal = static_cast<std::size_t>(count);

    std::vector<int> work;
    work.reserve(static_cast<std::size_t>(count));
    for (int b = 0; b < count; ++b) {
        if (dirty != nullptr && (*dirty)[static_cast<std::size_t>(b)] == 0) {
            ++total.blocksCached;
            const BlockRange r = blockRange(b);
            total.nodesTotal +=
                static_cast<std::uint64_t>(r.nodeHi.x - r.nodeLo.x + 1) *
                static_cast<std::uint64_t>(r.nodeHi.y - r.nodeLo.y + 1) *
                static_cast<std::uint64_t>(r.nodeHi.z - r.nodeLo.z + 1);
            continue;
        }
        work.push_back(b);
    }

    if (options.pool == nullptr || options.pool->size() <= 1 || work.size() <= 1) {
        for (const int b : work) processBlock(b, field, options, total);
        return total;
    }

    // Chunk the block list so task overhead stays negligible. Chunk
    // boundaries may vary with pool size, but every node value is a pure
    // function of (field, block), so the sampled grid is identical for
    // any worker count; the stats are sums and commute.
    core::ThreadPool& pool = *options.pool;
    const std::size_t chunks =
        std::min(work.size(), std::max<std::size_t>(1, pool.size() * 8));
    std::vector<FieldSampleStats> perChunk(chunks);
    pool.parallelFor(chunks, [&](std::size_t c) {
        const std::size_t begin = work.size() * c / chunks;
        const std::size_t end = work.size() * (c + 1) / chunks;
        for (std::size_t i = begin; i < end; ++i)
            processBlock(work[i], field, options, perChunk[c]);
    });
    for (const FieldSampleStats& s : perChunk) {
        total.blocksSampled += s.blocksSampled;
        total.blocksSkipped += s.blocksSkipped;
        total.nodesEvaluated += s.nodesEvaluated;
        total.nodesTotal += s.nodesTotal;
    }
    return total;
}

}  // namespace semholo::mesh
