#include "semholo/mesh/kdtree.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace semholo::mesh {

void KdTree::build(std::span<const Vec3f> points) {
    points_.assign(points.begin(), points.end());
    order_.resize(points_.size());
    std::iota(order_.begin(), order_.end(), 0u);
    nodes_.clear();
    if (points_.empty()) return;
    nodes_.reserve(points_.size() / kLeafSize * 2 + 2);
    buildRecursive(0, static_cast<std::uint32_t>(points_.size()));
}

std::uint32_t KdTree::buildRecursive(std::uint32_t begin, std::uint32_t end) {
    const auto nodeIndex = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();

    const std::uint32_t n = end - begin;
    if (n <= kLeafSize) {
        nodes_[nodeIndex].first = begin;
        nodes_[nodeIndex].count = static_cast<std::uint16_t>(n);
        return nodeIndex;
    }

    // Split on the axis with the largest spread.
    Vec3f lo = points_[order_[begin]], hi = lo;
    for (std::uint32_t i = begin; i < end; ++i) {
        const Vec3f& p = points_[order_[i]];
        lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
        hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
    }
    const Vec3f ext = hi - lo;
    std::uint8_t axis = 0;
    if (ext.y > ext.x) axis = 1;
    if (ext.z > ext[axis]) axis = 2;

    const std::uint32_t mid = begin + n / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                         return points_[a][axis] < points_[b][axis];
                     });
    const float split = points_[order_[mid]][axis];

    nodes_[nodeIndex].axis = axis;
    nodes_[nodeIndex].split = split;
    nodes_[nodeIndex].count = 0;
    buildRecursive(begin, mid);  // left child == nodeIndex + 1
    const std::uint32_t right = buildRecursive(mid, end);
    nodes_[nodeIndex].right = right;
    return nodeIndex;
}

KdTree::Hit KdTree::nearest(Vec3f query) const {
    Hit best;
    if (nodes_.empty()) return best;

    // Explicit stack avoids recursion overhead on deep trees.
    std::vector<std::uint32_t> stack{0};
    stack.reserve(64);
    while (!stack.empty()) {
        const std::uint32_t ni = stack.back();
        stack.pop_back();
        const Node& node = nodes_[ni];
        if (node.count > 0) {
            for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
                const std::uint32_t pi = order_[i];
                const float d2 = (points_[pi] - query).norm2();
                if (d2 < best.distance2) best = {pi, d2};
            }
            continue;
        }
        const float delta = query[node.axis] - node.split;
        const std::uint32_t near = delta <= 0.0f ? ni + 1 : node.right;
        const std::uint32_t far = delta <= 0.0f ? node.right : ni + 1;
        // Visit the far side only if the splitting plane is closer than
        // the best hit so far; push it first so near is processed next.
        if (delta * delta < best.distance2) stack.push_back(far);
        stack.push_back(near);
    }
    return best;
}

std::vector<KdTree::Hit> KdTree::kNearest(Vec3f query, std::size_t k) const {
    std::vector<Hit> result;
    if (nodes_.empty() || k == 0) return result;

    auto cmp = [](const Hit& a, const Hit& b) { return a.distance2 < b.distance2; };
    std::priority_queue<Hit, std::vector<Hit>, decltype(cmp)> heap(cmp);

    std::vector<std::uint32_t> stack{0};
    while (!stack.empty()) {
        const std::uint32_t ni = stack.back();
        stack.pop_back();
        const Node& node = nodes_[ni];
        if (node.count > 0) {
            for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
                const std::uint32_t pi = order_[i];
                const float d2 = (points_[pi] - query).norm2();
                if (heap.size() < k) {
                    heap.push({pi, d2});
                } else if (d2 < heap.top().distance2) {
                    heap.pop();
                    heap.push({pi, d2});
                }
            }
            continue;
        }
        const float delta = query[node.axis] - node.split;
        const std::uint32_t near = delta <= 0.0f ? ni + 1 : node.right;
        const std::uint32_t far = delta <= 0.0f ? node.right : ni + 1;
        const float worst =
            heap.size() < k ? std::numeric_limits<float>::max() : heap.top().distance2;
        if (delta * delta < worst) stack.push_back(far);
        stack.push_back(near);
    }

    result.resize(heap.size());
    for (auto it = result.rbegin(); it != result.rend(); ++it) {
        *it = heap.top();
        heap.pop();
    }
    return result;
}

std::vector<std::uint32_t> KdTree::radiusSearch(Vec3f query, float radius) const {
    std::vector<std::uint32_t> result;
    if (nodes_.empty() || radius <= 0.0f) return result;
    const float r2 = radius * radius;

    std::vector<std::uint32_t> stack{0};
    while (!stack.empty()) {
        const std::uint32_t ni = stack.back();
        stack.pop_back();
        const Node& node = nodes_[ni];
        if (node.count > 0) {
            for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
                const std::uint32_t pi = order_[i];
                if ((points_[pi] - query).norm2() <= r2) result.push_back(pi);
            }
            continue;
        }
        const float delta = query[node.axis] - node.split;
        if (delta <= radius) stack.push_back(ni + 1);
        if (-delta <= radius) stack.push_back(node.right);
    }
    return result;
}

}  // namespace semholo::mesh
