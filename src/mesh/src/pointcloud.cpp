#include "semholo/mesh/pointcloud.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "semholo/mesh/kdtree.hpp"

namespace semholo::mesh {

void PointCloud::clear() {
    points.clear();
    normals.clear();
    colors.clear();
}

void PointCloud::reserve(std::size_t n) {
    points.reserve(n);
    normals.reserve(n);
    colors.reserve(n);
}

void PointCloud::addPoint(Vec3f p) { points.push_back(p); }

void PointCloud::addPoint(Vec3f p, Vec3f color) {
    points.push_back(p);
    colors.push_back(color);
}

AABB PointCloud::bounds() const {
    AABB box;
    for (const Vec3f& p : points) box.expand(p);
    return box;
}

Vec3f PointCloud::centroid() const {
    Vec3f c{};
    if (points.empty()) return c;
    for (const Vec3f& p : points) c += p;
    return c / static_cast<float>(points.size());
}

void PointCloud::transform(const geom::RigidTransform& xf) {
    for (Vec3f& p : points) p = xf.apply(p);
    for (Vec3f& n : normals) n = xf.applyVector(n);
}

void PointCloud::append(const PointCloud& other) {
    const bool keepNormals = (empty() || hasNormals()) && other.hasNormals();
    const bool keepColors = (empty() || hasColors()) && other.hasColors();
    points.insert(points.end(), other.points.begin(), other.points.end());
    if (keepNormals)
        normals.insert(normals.end(), other.normals.begin(), other.normals.end());
    else
        normals.clear();
    if (keepColors)
        colors.insert(colors.end(), other.colors.begin(), other.colors.end());
    else
        colors.clear();
}

namespace {

struct VoxelKey {
    std::int64_t x, y, z;
    bool operator==(const VoxelKey&) const = default;
};

struct VoxelKeyHash {
    std::size_t operator()(const VoxelKey& k) const {
        std::size_t h = std::hash<std::int64_t>{}(k.x);
        h ^= std::hash<std::int64_t>{}(k.y) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h ^= std::hash<std::int64_t>{}(k.z) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h;
    }
};

struct VoxelAccum {
    Vec3f sumP{};
    Vec3f sumN{};
    Vec3f sumC{};
    std::uint32_t count{};
};

}  // namespace

PointCloud PointCloud::voxelDownsample(float voxelSize) const {
    PointCloud out;
    if (empty() || voxelSize <= 0.0f) return out;
    const float inv = 1.0f / voxelSize;
    std::unordered_map<VoxelKey, VoxelAccum, VoxelKeyHash> cells;
    cells.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Vec3f& p = points[i];
        const VoxelKey key{static_cast<std::int64_t>(std::floor(p.x * inv)),
                           static_cast<std::int64_t>(std::floor(p.y * inv)),
                           static_cast<std::int64_t>(std::floor(p.z * inv))};
        VoxelAccum& acc = cells[key];
        acc.sumP += p;
        if (hasNormals()) acc.sumN += normals[i];
        if (hasColors()) acc.sumC += colors[i];
        ++acc.count;
    }
    out.reserve(cells.size());
    for (const auto& [key, acc] : cells) {
        const float invN = 1.0f / static_cast<float>(acc.count);
        out.points.push_back(acc.sumP * invN);
        if (hasNormals()) out.normals.push_back((acc.sumN * invN).normalized());
        if (hasColors()) out.colors.push_back(acc.sumC * invN);
    }
    return out;
}

PointCloud PointCloud::removeStatisticalOutliers(std::size_t k, float stddevFactor) const {
    PointCloud out;
    if (points.size() <= k + 1) return *this;

    KdTree tree(points);
    std::vector<float> meanDist(points.size());
    double sum = 0.0, sumSq = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        // k+1 because the query point itself is its own nearest neighbour.
        const auto hits = tree.kNearest(points[i], k + 1);
        float total = 0.0f;
        std::size_t n = 0;
        for (const auto& h : hits) {
            if (h.index == i) continue;
            total += std::sqrt(h.distance2);
            ++n;
        }
        meanDist[i] = n > 0 ? total / static_cast<float>(n) : 0.0f;
        sum += meanDist[i];
        sumSq += static_cast<double>(meanDist[i]) * meanDist[i];
    }
    const double mean = sum / static_cast<double>(points.size());
    const double var =
        std::max(0.0, sumSq / static_cast<double>(points.size()) - mean * mean);
    const float threshold =
        static_cast<float>(mean + static_cast<double>(stddevFactor) * std::sqrt(var));

    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (meanDist[i] > threshold) continue;
        out.points.push_back(points[i]);
        if (hasNormals()) out.normals.push_back(normals[i]);
        if (hasColors()) out.colors.push_back(colors[i]);
    }
    return out;
}

}  // namespace semholo::mesh
