#include "semholo/mesh/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/kdtree.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::mesh {

namespace {

// Fixed chunk size (independent of worker count) so per-chunk partial
// sums merge in a deterministic order: results are identical however
// many workers the pool has, including one.
constexpr std::size_t kMetricsChunk = 4096;

struct DirectionalStats {
    double mean{};
    double max{};
    double sumSq{};
    double normalDot{};
    std::size_t count{};
};

DirectionalStats directed(const PointCloud& from, const PointCloud& to,
                          const KdTree& toTree) {
    const bool haveNormals = from.hasNormals() && to.hasNormals();
    const std::size_t n = from.points.size();
    auto scan = [&](std::size_t begin, std::size_t end) {
        DirectionalStats s;
        for (std::size_t i = begin; i < end; ++i) {
            const auto hit = toTree.nearest(from.points[i]);
            if (!hit.valid()) continue;
            const double d = std::sqrt(static_cast<double>(hit.distance2));
            s.mean += d;
            s.sumSq += static_cast<double>(hit.distance2);
            s.max = std::max(s.max, d);
            if (haveNormals)
                s.normalDot += std::fabs(static_cast<double>(
                    from.normals[i].dot(to.normals[hit.index])));
            ++s.count;
        }
        return s;
    };

    DirectionalStats s;
    const std::size_t chunks = (n + kMetricsChunk - 1) / kMetricsChunk;
    if (chunks <= 1) {
        s = scan(0, n);
    } else {
        std::vector<DirectionalStats> partial(chunks);
        core::sharedPool().parallelFor(chunks, [&](std::size_t c) {
            partial[c] = scan(c * kMetricsChunk,
                              std::min(n, (c + 1) * kMetricsChunk));
        });
        for (const DirectionalStats& p : partial) {
            s.mean += p.mean;
            s.sumSq += p.sumSq;
            s.max = std::max(s.max, p.max);
            s.normalDot += p.normalDot;
            s.count += p.count;
        }
    }
    if (s.count > 0) {
        s.mean /= static_cast<double>(s.count);
        s.normalDot /= static_cast<double>(s.count);
    }
    return s;
}

}  // namespace

GeometryErrorStats compareClouds(const PointCloud& a, const PointCloud& b) {
    GeometryErrorStats out;
    if (a.empty() || b.empty()) return out;

    KdTree treeA(a.points);
    KdTree treeB(b.points);
    const DirectionalStats ab = directed(a, b, treeB);
    const DirectionalStats ba = directed(b, a, treeA);

    out.meanForward = ab.mean;
    out.meanBackward = ba.mean;
    out.chamfer = 0.5 * (ab.mean + ba.mean);
    out.hausdorff = std::max(ab.max, ba.max);
    const std::size_t n = ab.count + ba.count;
    out.rmse = n > 0 ? std::sqrt((ab.sumSq + ba.sumSq) / static_cast<double>(n)) : 0.0;
    if (a.hasNormals() && b.hasNormals())
        out.normalConsistency = 0.5 * (ab.normalDot + ba.normalDot);

    // MPEG point-to-point PSNR: peak = diagonal of the reference (a).
    const double peak = a.bounds().diagonal();
    const double mseSym =
        n > 0 ? (ab.sumSq + ba.sumSq) / static_cast<double>(n) : 0.0;
    if (peak > 0.0 && mseSym > 0.0)
        out.psnr = 10.0 * std::log10(peak * peak / mseSym);
    else
        out.psnr = mseSym == 0.0 ? 1e9 : 0.0;
    return out;
}

GeometryErrorStats compareMeshes(const TriMesh& a, const TriMesh& b,
                                 std::size_t samplesPerMesh, std::uint64_t seed) {
    const PointCloud ca = sampleSurface(a, samplesPerMesh, seed);
    const PointCloud cb = sampleSurface(b, samplesPerMesh, seed + 1);
    return compareClouds(ca, cb);
}

double pointToMeshError(const PointCloud& cloud, const TriMesh& reference) {
    if (cloud.empty() || reference.triangles.empty()) return 0.0;

    // Candidate pruning: KD-tree over triangle centroids; test the
    // triangles whose centroids are nearest, plus a conservative radius.
    std::vector<Vec3f> centroids;
    centroids.reserve(reference.triangles.size());
    float maxTriRadius = 0.0f;
    for (const Triangle& t : reference.triangles) {
        const Vec3f c = (reference.vertices[t.a] + reference.vertices[t.b] +
                         reference.vertices[t.c]) /
                        3.0f;
        centroids.push_back(c);
        maxTriRadius = std::max({maxTriRadius, (reference.vertices[t.a] - c).norm(),
                                 (reference.vertices[t.b] - c).norm(),
                                 (reference.vertices[t.c] - c).norm()});
    }
    KdTree tree(centroids);

    auto scan = [&](std::size_t begin, std::size_t end) {
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
            const Vec3f& p = cloud.points[i];
            const auto near = tree.nearest(p);
            if (!near.valid()) continue;
            const float searchRadius =
                std::sqrt(near.distance2) + 2.0f * maxTriRadius;
            const auto candidates = tree.radiusSearch(p, searchRadius);
            float best = std::numeric_limits<float>::max();
            for (const std::uint32_t ti : candidates) {
                const Triangle& t = reference.triangles[ti];
                const Vec3f cp = geom::closestPointOnTriangle(
                    p, reference.vertices[t.a], reference.vertices[t.b],
                    reference.vertices[t.c]);
                best = std::min(best, (p - cp).norm2());
            }
            if (best < std::numeric_limits<float>::max())
                sum += std::sqrt(static_cast<double>(best));
        }
        return sum;
    };

    const std::size_t n = cloud.points.size();
    const std::size_t chunks = (n + kMetricsChunk - 1) / kMetricsChunk;
    double total = 0.0;
    if (chunks <= 1) {
        total = scan(0, n);
    } else {
        std::vector<double> partial(chunks, 0.0);
        core::sharedPool().parallelFor(chunks, [&](std::size_t c) {
            partial[c] =
                scan(c * kMetricsChunk, std::min(n, (c + 1) * kMetricsChunk));
        });
        for (const double p : partial) total += p;
    }
    return total / static_cast<double>(cloud.points.size());
}

}  // namespace semholo::mesh
