#include "semholo/mesh/trimesh.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>

namespace semholo::mesh {

void TriMesh::clear() {
    vertices.clear();
    triangles.clear();
    normals.clear();
    colors.clear();
    uvs.clear();
}

AABB TriMesh::bounds() const {
    AABB box;
    for (const Vec3f& v : vertices) box.expand(v);
    return box;
}

double TriMesh::surfaceArea() const {
    double area = 0.0;
    for (const Triangle& t : triangles) area += triangleArea(t);
    return area;
}

Vec3f TriMesh::triangleNormal(const Triangle& t) const {
    const Vec3f n =
        (vertices[t.b] - vertices[t.a]).cross(vertices[t.c] - vertices[t.a]);
    return n.normalized();
}

float TriMesh::triangleArea(const Triangle& t) const {
    return 0.5f *
           (vertices[t.b] - vertices[t.a]).cross(vertices[t.c] - vertices[t.a]).norm();
}

Vec3f TriMesh::centroid() const {
    Vec3f c{};
    if (vertices.empty()) return c;
    for (const Vec3f& v : vertices) c += v;
    return c / static_cast<float>(vertices.size());
}

void TriMesh::computeVertexNormals() {
    normals.assign(vertices.size(), Vec3f{});
    for (const Triangle& t : triangles) {
        // Unnormalized cross product weights faces by area.
        const Vec3f n =
            (vertices[t.b] - vertices[t.a]).cross(vertices[t.c] - vertices[t.a]);
        normals[t.a] += n;
        normals[t.b] += n;
        normals[t.c] += n;
    }
    for (Vec3f& n : normals) n = n.normalized();
}

void TriMesh::transform(const geom::RigidTransform& xf) {
    for (Vec3f& v : vertices) v = xf.apply(v);
    for (Vec3f& n : normals) n = xf.applyVector(n);
}

namespace {

struct QuantizedKey {
    std::int64_t x, y, z;
    bool operator==(const QuantizedKey&) const = default;
};

struct QuantizedKeyHash {
    std::size_t operator()(const QuantizedKey& k) const {
        std::size_t h = std::hash<std::int64_t>{}(k.x);
        h ^= std::hash<std::int64_t>{}(k.y) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h ^= std::hash<std::int64_t>{}(k.z) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h;
    }
};

}  // namespace

std::size_t TriMesh::weldVertices(float epsilon) {
    if (vertices.empty()) return 0;
    const float inv = epsilon > 0.0f ? 1.0f / epsilon : 1e12f;
    std::unordered_map<QuantizedKey, std::uint32_t, QuantizedKeyHash> firstAt;
    std::vector<std::uint32_t> remap(vertices.size());
    std::vector<Vec3f> newVerts;
    std::vector<Vec3f> newNormals;
    std::vector<Vec3f> newColors;
    std::vector<Vec2f> newUVs;
    newVerts.reserve(vertices.size());

    for (std::size_t i = 0; i < vertices.size(); ++i) {
        const Vec3f& v = vertices[i];
        const QuantizedKey key{static_cast<std::int64_t>(std::llround(v.x * inv)),
                               static_cast<std::int64_t>(std::llround(v.y * inv)),
                               static_cast<std::int64_t>(std::llround(v.z * inv))};
        auto [it, inserted] =
            firstAt.try_emplace(key, static_cast<std::uint32_t>(newVerts.size()));
        if (inserted) {
            newVerts.push_back(v);
            if (hasNormals()) newNormals.push_back(normals[i]);
            if (hasColors()) newColors.push_back(colors[i]);
            if (hasUVs()) newUVs.push_back(uvs[i]);
        }
        remap[i] = it->second;
    }

    const std::size_t removed = vertices.size() - newVerts.size();
    vertices = std::move(newVerts);
    normals = std::move(newNormals);
    colors = std::move(newColors);
    uvs = std::move(newUVs);
    for (Triangle& t : triangles) {
        t.a = remap[t.a];
        t.b = remap[t.b];
        t.c = remap[t.c];
    }
    removeDegenerateTriangles();
    return removed;
}

std::size_t TriMesh::removeDegenerateTriangles(float areaEpsilon) {
    const std::size_t before = triangles.size();
    std::erase_if(triangles, [&](const Triangle& t) {
        if (t.a == t.b || t.b == t.c || t.a == t.c) return true;
        return triangleArea(t) < areaEpsilon;
    });
    return before - triangles.size();
}

void TriMesh::append(const TriMesh& other) {
    const auto offset = static_cast<std::uint32_t>(vertices.size());
    const bool keepNormals = (empty() || hasNormals()) && other.hasNormals();
    const bool keepColors = (empty() || hasColors()) && other.hasColors();
    const bool keepUVs = (empty() || hasUVs()) && other.hasUVs();
    vertices.insert(vertices.end(), other.vertices.begin(), other.vertices.end());
    if (keepNormals)
        normals.insert(normals.end(), other.normals.begin(), other.normals.end());
    else
        normals.clear();
    if (keepColors)
        colors.insert(colors.end(), other.colors.begin(), other.colors.end());
    else
        colors.clear();
    if (keepUVs)
        uvs.insert(uvs.end(), other.uvs.begin(), other.uvs.end());
    else
        uvs.clear();
    triangles.reserve(triangles.size() + other.triangles.size());
    for (const Triangle& t : other.triangles)
        triangles.push_back({t.a + offset, t.b + offset, t.c + offset});
}

namespace {

using EdgeCounts = std::map<std::pair<std::uint32_t, std::uint32_t>, int>;

EdgeCounts edgeUseCounts(const TriMesh& m) {
    EdgeCounts counts;
    auto add = [&counts](std::uint32_t u, std::uint32_t v) {
        if (u > v) std::swap(u, v);
        ++counts[{u, v}];
    };
    for (const Triangle& t : m.triangles) {
        add(t.a, t.b);
        add(t.b, t.c);
        add(t.c, t.a);
    }
    return counts;
}

}  // namespace

std::size_t TriMesh::countNonManifoldEdges() const {
    std::size_t n = 0;
    for (const auto& [edge, count] : edgeUseCounts(*this))
        if (count > 2) ++n;
    return n;
}

std::size_t TriMesh::countBoundaryEdges() const {
    std::size_t n = 0;
    for (const auto& [edge, count] : edgeUseCounts(*this))
        if (count == 1) ++n;
    return n;
}

namespace {

bool lexLess(const Vec3f& a, const Vec3f& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.z < b.z;
}

}  // namespace

std::vector<std::array<Vec3f, 3>> canonicalTriangleSoup(const TriMesh& m) {
    std::vector<std::array<Vec3f, 3>> soup;
    soup.reserve(m.triangles.size());
    for (const Triangle& t : m.triangles) {
        const std::array<Vec3f, 3> tri{m.vertices[t.a], m.vertices[t.b],
                                       m.vertices[t.c]};
        int lead = 0;
        for (int i = 1; i < 3; ++i)
            if (lexLess(tri[i], tri[lead])) lead = i;
        soup.push_back({tri[lead], tri[(lead + 1) % 3], tri[(lead + 2) % 3]});
    }
    std::sort(soup.begin(), soup.end(),
              [](const std::array<Vec3f, 3>& a, const std::array<Vec3f, 3>& b) {
                  for (int i = 0; i < 3; ++i) {
                      if (lexLess(a[i], b[i])) return true;
                      if (lexLess(b[i], a[i])) return false;
                  }
                  return false;
              });
    return soup;
}

TriMesh makeBox(Vec3f he, Vec3f c) {
    TriMesh m;
    // 8 corners.
    for (int i = 0; i < 8; ++i) {
        m.vertices.push_back({c.x + ((i & 1) ? he.x : -he.x),
                              c.y + ((i & 2) ? he.y : -he.y),
                              c.z + ((i & 4) ? he.z : -he.z)});
    }
    // 12 triangles, outward winding.
    const std::array<std::array<std::uint32_t, 3>, 12> tris{{{0, 2, 1},
                                                             {1, 2, 3},
                                                             {4, 5, 6},
                                                             {5, 7, 6},
                                                             {0, 1, 4},
                                                             {1, 5, 4},
                                                             {2, 6, 3},
                                                             {3, 6, 7},
                                                             {0, 4, 2},
                                                             {2, 4, 6},
                                                             {1, 3, 5},
                                                             {3, 7, 5}}};
    for (const auto& t : tris) m.triangles.push_back({t[0], t[1], t[2]});
    m.computeVertexNormals();
    return m;
}

TriMesh makeUVSphere(float radius, int stacks, int slices, Vec3f center) {
    TriMesh m;
    for (int i = 0; i <= stacks; ++i) {
        const float phi = static_cast<float>(M_PI) * static_cast<float>(i) /
                          static_cast<float>(stacks);
        for (int j = 0; j <= slices; ++j) {
            const float theta = 2.0f * static_cast<float>(M_PI) * static_cast<float>(j) /
                                static_cast<float>(slices);
            const Vec3f dir{std::sin(phi) * std::cos(theta), std::cos(phi),
                            std::sin(phi) * std::sin(theta)};
            m.vertices.push_back(center + dir * radius);
            m.normals.push_back(dir);
            m.uvs.push_back({static_cast<float>(j) / static_cast<float>(slices),
                             static_cast<float>(i) / static_cast<float>(stacks)});
        }
    }
    const auto cols = static_cast<std::uint32_t>(slices + 1);
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(stacks); ++i) {
        for (std::uint32_t j = 0; j < static_cast<std::uint32_t>(slices); ++j) {
            const std::uint32_t v0 = i * cols + j;
            const std::uint32_t v1 = v0 + 1;
            const std::uint32_t v2 = v0 + cols;
            const std::uint32_t v3 = v2 + 1;
            if (i != 0) m.triangles.push_back({v0, v1, v2});
            if (i + 1 != static_cast<std::uint32_t>(stacks))
                m.triangles.push_back({v1, v3, v2});
        }
    }
    return m;
}

TriMesh makeCylinder(float radius, float height, int slices, Vec3f center) {
    TriMesh m;
    const float h2 = height * 0.5f;
    for (int ring = 0; ring < 2; ++ring) {
        const float y = ring == 0 ? -h2 : h2;
        for (int j = 0; j <= slices; ++j) {
            const float theta = 2.0f * static_cast<float>(M_PI) * static_cast<float>(j) /
                                static_cast<float>(slices);
            m.vertices.push_back(center + Vec3f{radius * std::cos(theta), y,
                                                radius * std::sin(theta)});
        }
    }
    const auto cols = static_cast<std::uint32_t>(slices + 1);
    for (std::uint32_t j = 0; j < static_cast<std::uint32_t>(slices); ++j) {
        const std::uint32_t v0 = j, v1 = j + 1, v2 = j + cols, v3 = j + cols + 1;
        m.triangles.push_back({v0, v2, v1});
        m.triangles.push_back({v1, v2, v3});
    }
    // Caps.
    const auto bottomCenter = static_cast<std::uint32_t>(m.vertices.size());
    m.vertices.push_back(center + Vec3f{0, -h2, 0});
    const auto topCenter = static_cast<std::uint32_t>(m.vertices.size());
    m.vertices.push_back(center + Vec3f{0, h2, 0});
    for (std::uint32_t j = 0; j < static_cast<std::uint32_t>(slices); ++j) {
        m.triangles.push_back({bottomCenter, j, j + 1});
        m.triangles.push_back({topCenter, cols + j + 1, cols + j});
    }
    m.computeVertexNormals();
    return m;
}

}  // namespace semholo::mesh
