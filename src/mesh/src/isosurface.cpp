#include "semholo/mesh/isosurface.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_map>

namespace semholo::mesh {

namespace {

// The six tetrahedra of a cube, as corner indices (cube corners numbered
// with bit 0 = +x, bit 1 = +y, bit 2 = +z). This decomposition shares
// the main diagonal 0-7 so faces of adjacent tetrahedra match up.
constexpr std::array<std::array<int, 4>, 6> kTets{{
    {0, 5, 1, 7},
    {0, 1, 3, 7},
    {0, 3, 2, 7},
    {0, 2, 6, 7},
    {0, 6, 4, 7},
    {0, 4, 5, 7},
}};

struct EdgeKey {
    std::uint64_t a, b;
    bool operator==(const EdgeKey&) const = default;
};

struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const {
        return std::hash<std::uint64_t>{}(k.a * 0x9e3779b97f4a7c15ull ^ k.b);
    }
};

// Shared marching-tetrahedra pass. When 'sampler' is non-null, cells in
// blocks it certified surface-free are skipped outright — those cells
// provably emit no triangles, so skipping them preserves both the
// triangle set and the vertex insertion order (bit-identical output).
TriMesh extractImpl(const VoxelGrid& grid, const IsoSurfaceOptions& options,
                    const BlockSampler* sampler) {
    TriMesh out;
    const Vec3i res = grid.resolution();
    if (res.x < 1 || res.y < 1 || res.z < 1) return out;

    // Global node id for edge-interpolation vertex dedup.
    const std::uint64_t nx = static_cast<std::uint64_t>(res.x) + 1;
    const std::uint64_t ny = static_cast<std::uint64_t>(res.y) + 1;
    auto nodeId = [nx, ny](int x, int y, int z) {
        return (static_cast<std::uint64_t>(z) * ny + static_cast<std::uint64_t>(y)) * nx +
               static_cast<std::uint64_t>(x);
    };

    std::unordered_map<EdgeKey, std::uint32_t, EdgeKeyHash> edgeVertex;

    // Emit (or reuse) the vertex where the iso-surface crosses the edge
    // between grid nodes idA and idB.
    auto edgePoint = [&](std::uint64_t idA, Vec3f pA, float vA, std::uint64_t idB,
                         Vec3f pB, float vB) -> std::uint32_t {
        if (idA > idB) {
            std::swap(idA, idB);
            std::swap(pA, pB);
            std::swap(vA, vB);
        }
        const EdgeKey key{idA, idB};
        if (const auto it = edgeVertex.find(key); it != edgeVertex.end())
            return it->second;
        const float denom = vB - vA;
        float t = std::fabs(denom) > 1e-12f ? (options.isoValue - vA) / denom : 0.5f;
        t = geom::clamp(t, 0.0f, 1.0f);
        const auto idx = static_cast<std::uint32_t>(out.vertices.size());
        out.vertices.push_back(geom::lerp(pA, pB, t));
        edgeVertex.emplace(key, idx);
        return idx;
    };

    std::array<Vec3f, 8> corner;
    std::array<float, 8> value;
    std::array<std::uint64_t, 8> id;

    // Orient each triangle so its normal points away from the inside of
    // the tetrahedron (towards higher field values when inside = below
    // iso). Per-triangle orientation keeps the winding globally
    // consistent without a case table.
    auto emitTriangle = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                            Vec3f insideRef, bool outward) {
        if (a == b || b == c || a == c) return;
        const Vec3f& pa = out.vertices[a];
        const Vec3f& pb = out.vertices[b];
        const Vec3f& pc = out.vertices[c];
        const Vec3f n = (pb - pa).cross(pc - pa);
        const Vec3f centroid = (pa + pb + pc) / 3.0f;
        const float side = n.dot(centroid - insideRef);
        const bool flip = outward ? side < 0.0f : side > 0.0f;
        if (flip)
            out.triangles.push_back({a, c, b});
        else
            out.triangles.push_back({a, b, c});
    };

    const std::vector<std::uint8_t>* surfaceFree =
        sampler != nullptr ? &sampler->surfaceFree() : nullptr;

    for (int z = 0; z < res.z; ++z) {
        for (int y = 0; y < res.y; ++y) {
            for (int x = 0; x < res.x; ++x) {
                if (surfaceFree != nullptr &&
                    (*surfaceFree)[static_cast<std::size_t>(
                        sampler->cellBlock(x, y, z))] != 0)
                    continue;
                for (int i = 0; i < 8; ++i) {
                    const int cx = x + (i & 1);
                    const int cy = y + ((i >> 1) & 1);
                    const int cz = z + ((i >> 2) & 1);
                    corner[i] = grid.nodePosition(cx, cy, cz);
                    value[i] = grid.at(cx, cy, cz);
                    id[i] = nodeId(cx, cy, cz);
                }

                for (const auto& tet : kTets) {
                    int mask = 0;
                    for (int i = 0; i < 4; ++i)
                        if (value[tet[i]] < options.isoValue) mask |= 1 << i;
                    if (mask == 0 || mask == 15) continue;

                    auto vtx = [&](int i, int j) {
                        return edgePoint(id[tet[i]], corner[tet[i]], value[tet[i]],
                                         id[tet[j]], corner[tet[j]], value[tet[j]]);
                    };

                    // Centroid of the inside corners: the reference point
                    // the surface should face away from.
                    Vec3f insideRef{};
                    int insideCount = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (mask & (1 << i)) {
                            insideRef += corner[tet[i]];
                            ++insideCount;
                        }
                    }
                    insideRef /= static_cast<float>(insideCount);

                    // Work with the canonical 1- or 2-inside pattern.
                    int m = mask;
                    bool complemented = false;
                    if (insideCount > 2) {
                        m = (~m) & 15;
                        complemented = true;
                        // Reference flips to the (former) outside corners.
                        Vec3f ref{};
                        int n = 0;
                        for (int i = 0; i < 4; ++i) {
                            if (m & (1 << i)) {
                                ref += corner[tet[i]];
                                ++n;
                            }
                        }
                        insideRef = ref / static_cast<float>(n);
                    }
                    // After complementing, insideRef points at corners on
                    // the *outside*, so orientation must face towards it.
                    const bool outward = !complemented;

                    switch (m) {
                        case 1:
                            emitTriangle(vtx(0, 1), vtx(0, 2), vtx(0, 3), insideRef,
                                         outward);
                            break;
                        case 2:
                            emitTriangle(vtx(1, 0), vtx(1, 2), vtx(1, 3), insideRef,
                                         outward);
                            break;
                        case 4:
                            emitTriangle(vtx(2, 0), vtx(2, 1), vtx(2, 3), insideRef,
                                         outward);
                            break;
                        case 8:
                            emitTriangle(vtx(3, 0), vtx(3, 1), vtx(3, 2), insideRef,
                                         outward);
                            break;
                        case 3: {  // inside (canonical): {0,1}
                            const auto q0 = vtx(0, 2), q1 = vtx(0, 3), q2 = vtx(1, 3),
                                       q3 = vtx(1, 2);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 5: {  // {0,2}
                            const auto q0 = vtx(0, 1), q1 = vtx(2, 1), q2 = vtx(2, 3),
                                       q3 = vtx(0, 3);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 6: {  // {1,2}
                            const auto q0 = vtx(1, 0), q1 = vtx(2, 0), q2 = vtx(2, 3),
                                       q3 = vtx(1, 3);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 9: {  // {0,3}
                            const auto q0 = vtx(0, 1), q1 = vtx(3, 1), q2 = vtx(3, 2),
                                       q3 = vtx(0, 2);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 10: {  // {1,3}
                            const auto q0 = vtx(1, 0), q1 = vtx(3, 0), q2 = vtx(3, 2),
                                       q3 = vtx(1, 2);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 12: {  // {2,3}
                            const auto q0 = vtx(2, 0), q1 = vtx(3, 0), q2 = vtx(3, 1),
                                       q3 = vtx(2, 1);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        default:
                            break;
                    }
                }
            }
        }
    }

    out.removeDegenerateTriangles();

    if (!options.orientOutward) {
        // Inward orientation requested: flip everything (we always build
        // outward above).
        for (Triangle& tri : out.triangles) std::swap(tri.b, tri.c);
    }

    if (options.weldVertices) {
        const float eps = 1e-5f * grid.bounds().diagonal();
        out.weldVertices(eps);
    }
    out.computeVertexNormals();
    return out;
}

}  // namespace

TriMesh extractIsoSurface(const VoxelGrid& grid, const IsoSurfaceOptions& options) {
    return extractImpl(grid, options, nullptr);
}

TriMesh extractIsoSurface(const VoxelGrid& grid, const BlockSampler& sampler,
                          const IsoSurfaceOptions& options) {
    return extractImpl(grid, options, &sampler);
}

TriMesh extractIsoSurface(const ScalarField& field, const geom::AABB& bounds,
                          int resolution, const IsoSurfaceOptions& options) {
    VoxelGrid grid(bounds, {resolution, resolution, resolution});
    grid.sample(field);
    return extractIsoSurface(grid, options);
}

TriMesh extractIsoSurface(const ScalarField& field, const geom::AABB& bounds,
                          int resolution, const IsoSurfaceOptions& options,
                          const FieldSampleOptions& sampling,
                          FieldSampleStats* stats) {
    VoxelGrid grid(bounds, {resolution, resolution, resolution});
    BlockSampler sampler(grid, sampling.blockSize);
    const FieldSampleStats s = sampler.sample(field, sampling);
    if (stats != nullptr) *stats = s;
    return extractIsoSurface(grid, sampler, options);
}

}  // namespace semholo::mesh
