#include "semholo/mesh/isosurface.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "semholo/core/thread_pool.hpp"
#include "semholo/geometry/simd.hpp"

namespace semholo::mesh {

namespace {

// The six tetrahedra of a cube, as corner indices (cube corners numbered
// with bit 0 = +x, bit 1 = +y, bit 2 = +z). This decomposition shares
// the main diagonal 0-7 so faces of adjacent tetrahedra match up. Every
// tet is the chain 0 ⊂ a ⊂ b ⊂ 7 of corner bit sets, which is what the
// edge addressing below relies on.
constexpr std::array<std::array<int, 4>, 6> kTets{{
    {0, 5, 1, 7},
    {0, 1, 3, 7},
    {0, 3, 2, 7},
    {0, 2, 6, 7},
    {0, 6, 4, 7},
    {0, 4, 5, 7},
}};

// ---------------------------------------------------------------------
// Legacy extractor (reference implementation). Serial cell scan, hashed
// edge dedup, per-triangle geometric orientation. Kept verbatim: the
// block extractor below is validated against it (canonical triangle-set
// equality) and benchmarked against it within one run.
// ---------------------------------------------------------------------

struct EdgeKey {
    std::uint64_t a, b;
    bool operator==(const EdgeKey&) const = default;
};

struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const {
        return std::hash<std::uint64_t>{}(k.a * 0x9e3779b97f4a7c15ull ^ k.b);
    }
};

// Shared marching-tetrahedra pass. When 'sampler' is non-null, cells in
// blocks it certified surface-free are skipped outright — those cells
// provably emit no triangles, so skipping them preserves both the
// triangle set and the vertex insertion order (bit-identical output).
TriMesh extractLegacyImpl(const VoxelGrid& grid, const IsoSurfaceOptions& options,
                          const BlockSampler* sampler) {
    TriMesh out;
    const Vec3i res = grid.resolution();
    if (res.x < 1 || res.y < 1 || res.z < 1) return out;

    // Global node id for edge-interpolation vertex dedup.
    const std::uint64_t nx = static_cast<std::uint64_t>(res.x) + 1;
    const std::uint64_t ny = static_cast<std::uint64_t>(res.y) + 1;
    auto nodeId = [nx, ny](int x, int y, int z) {
        return (static_cast<std::uint64_t>(z) * ny + static_cast<std::uint64_t>(y)) * nx +
               static_cast<std::uint64_t>(x);
    };

    std::unordered_map<EdgeKey, std::uint32_t, EdgeKeyHash> edgeVertex;

    // Emit (or reuse) the vertex where the iso-surface crosses the edge
    // between grid nodes idA and idB.
    auto edgePoint = [&](std::uint64_t idA, Vec3f pA, float vA, std::uint64_t idB,
                         Vec3f pB, float vB) -> std::uint32_t {
        if (idA > idB) {
            std::swap(idA, idB);
            std::swap(pA, pB);
            std::swap(vA, vB);
        }
        const EdgeKey key{idA, idB};
        if (const auto it = edgeVertex.find(key); it != edgeVertex.end())
            return it->second;
        const float denom = vB - vA;
        float t = std::fabs(denom) > 1e-12f ? (options.isoValue - vA) / denom : 0.5f;
        t = geom::clamp(t, 0.0f, 1.0f);
        const auto idx = static_cast<std::uint32_t>(out.vertices.size());
        out.vertices.push_back(geom::lerp(pA, pB, t));
        edgeVertex.emplace(key, idx);
        return idx;
    };

    std::array<Vec3f, 8> corner;
    std::array<float, 8> value;
    std::array<std::uint64_t, 8> id;

    // Orient each triangle so its normal points away from the inside of
    // the tetrahedron (towards higher field values when inside = below
    // iso). Per-triangle orientation keeps the winding globally
    // consistent without a case table.
    auto emitTriangle = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                            Vec3f insideRef, bool outward) {
        if (a == b || b == c || a == c) return;
        const Vec3f& pa = out.vertices[a];
        const Vec3f& pb = out.vertices[b];
        const Vec3f& pc = out.vertices[c];
        const Vec3f n = (pb - pa).cross(pc - pa);
        const Vec3f centroid = (pa + pb + pc) / 3.0f;
        const float side = n.dot(centroid - insideRef);
        const bool flip = outward ? side < 0.0f : side > 0.0f;
        if (flip)
            out.triangles.push_back({a, c, b});
        else
            out.triangles.push_back({a, b, c});
    };

    const std::vector<std::uint8_t>* surfaceFree =
        sampler != nullptr ? &sampler->surfaceFree() : nullptr;

    for (int z = 0; z < res.z; ++z) {
        for (int y = 0; y < res.y; ++y) {
            for (int x = 0; x < res.x; ++x) {
                if (surfaceFree != nullptr &&
                    (*surfaceFree)[static_cast<std::size_t>(
                        sampler->cellBlock(x, y, z))] != 0)
                    continue;
                for (int i = 0; i < 8; ++i) {
                    const int cx = x + (i & 1);
                    const int cy = y + ((i >> 1) & 1);
                    const int cz = z + ((i >> 2) & 1);
                    corner[i] = grid.nodePosition(cx, cy, cz);
                    value[i] = grid.at(cx, cy, cz);
                    id[i] = nodeId(cx, cy, cz);
                }

                for (const auto& tet : kTets) {
                    int mask = 0;
                    for (int i = 0; i < 4; ++i)
                        if (value[tet[i]] < options.isoValue) mask |= 1 << i;
                    if (mask == 0 || mask == 15) continue;

                    auto vtx = [&](int i, int j) {
                        return edgePoint(id[tet[i]], corner[tet[i]], value[tet[i]],
                                         id[tet[j]], corner[tet[j]], value[tet[j]]);
                    };

                    // Centroid of the inside corners: the reference point
                    // the surface should face away from.
                    Vec3f insideRef{};
                    int insideCount = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (mask & (1 << i)) {
                            insideRef += corner[tet[i]];
                            ++insideCount;
                        }
                    }
                    insideRef /= static_cast<float>(insideCount);

                    // Work with the canonical 1- or 2-inside pattern.
                    int m = mask;
                    bool complemented = false;
                    if (insideCount > 2) {
                        m = (~m) & 15;
                        complemented = true;
                        // Reference flips to the (former) outside corners.
                        Vec3f ref{};
                        int n = 0;
                        for (int i = 0; i < 4; ++i) {
                            if (m & (1 << i)) {
                                ref += corner[tet[i]];
                                ++n;
                            }
                        }
                        insideRef = ref / static_cast<float>(n);
                    }
                    // After complementing, insideRef points at corners on
                    // the *outside*, so orientation must face towards it.
                    const bool outward = !complemented;

                    switch (m) {
                        case 1:
                            emitTriangle(vtx(0, 1), vtx(0, 2), vtx(0, 3), insideRef,
                                         outward);
                            break;
                        case 2:
                            emitTriangle(vtx(1, 0), vtx(1, 2), vtx(1, 3), insideRef,
                                         outward);
                            break;
                        case 4:
                            emitTriangle(vtx(2, 0), vtx(2, 1), vtx(2, 3), insideRef,
                                         outward);
                            break;
                        case 8:
                            emitTriangle(vtx(3, 0), vtx(3, 1), vtx(3, 2), insideRef,
                                         outward);
                            break;
                        case 3: {  // inside (canonical): {0,1}
                            const auto q0 = vtx(0, 2), q1 = vtx(0, 3), q2 = vtx(1, 3),
                                       q3 = vtx(1, 2);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 5: {  // {0,2}
                            const auto q0 = vtx(0, 1), q1 = vtx(2, 1), q2 = vtx(2, 3),
                                       q3 = vtx(0, 3);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 6: {  // {1,2}
                            const auto q0 = vtx(1, 0), q1 = vtx(2, 0), q2 = vtx(2, 3),
                                       q3 = vtx(1, 3);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 9: {  // {0,3}
                            const auto q0 = vtx(0, 1), q1 = vtx(3, 1), q2 = vtx(3, 2),
                                       q3 = vtx(0, 2);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 10: {  // {1,3}
                            const auto q0 = vtx(1, 0), q1 = vtx(3, 0), q2 = vtx(3, 2),
                                       q3 = vtx(1, 2);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        case 12: {  // {2,3}
                            const auto q0 = vtx(2, 0), q1 = vtx(3, 0), q2 = vtx(3, 1),
                                       q3 = vtx(2, 1);
                            emitTriangle(q0, q1, q2, insideRef, outward);
                            emitTriangle(q0, q2, q3, insideRef, outward);
                            break;
                        }
                        default:
                            break;
                    }
                }
            }
        }
    }

    out.removeDegenerateTriangles();

    if (!options.orientOutward) {
        // Inward orientation requested: flip everything (we always build
        // outward above).
        for (Triangle& tri : out.triangles) std::swap(tri.b, tri.c);
    }

    if (options.weldVertices) {
        const float eps = 1e-5f * grid.bounds().diagonal();
        out.weldVertices(eps);
    }
    out.computeVertexNormals();
    return out;
}

// ---------------------------------------------------------------------
// Case table.
//
// The 6-tet decomposition uses 19 edge classes per cell: 12 axis edges,
// 6 face diagonals and the main diagonal. Every tet corner pair (ca,cb)
// is nested (ca ⊂ cb or cb ⊂ ca as bit sets), so each edge is uniquely
// addressed by its *base* node (the corner with fewer bits, ca & cb)
// plus a direction dir = ca ^ cb in {1..7}: seven slots per node, not
// three — the diagonals are first-class citizens here. Cell-local edge
// id = baseCorner * 7 + (dir - 1) with baseCorner in {0..6}.
//
// Per cube sign configuration (8 corner bits, bit set = value < iso) the
// table stores the flattened triangle list as triples of cell-local edge
// ids in the legacy extractor's emission order, plus the inputs of its
// per-triangle orientation test: the cube corners whose centroid is the
// inside reference point and the outward/complemented flag. The winding
// itself is NOT baked: in exact arithmetic the side-test sign is an
// invariant of the configuration, but the legacy test runs in float,
// where a near-degenerate sliver's tiny cross product can carry the
// opposite sign — so emission replays the same float test on the actual
// interpolated vertex positions, reproducing legacy's winding bit for
// bit, slivers included.
// ---------------------------------------------------------------------

constexpr int kSlotsPerNode = 7;

struct CaseTable {
    struct Tri {
        std::array<std::uint8_t, 3> e;  // cell-local edge ids, legacy order
        std::uint8_t refA, refB;        // corners averaged into insideRef
                                        // (refB = 0xff when only one)
        bool outward;                   // legacy's !complemented flag
    };
    std::array<std::uint16_t, 256> offset{};
    std::array<std::uint8_t, 256> count{};  // triangles per config
    std::vector<Tri> tris;
};

CaseTable buildCaseTable() {
    CaseTable t;
    t.tris.reserve(2048);

    for (int config = 0; config < 256; ++config) {
        t.offset[config] = static_cast<std::uint16_t>(t.tris.size());
        for (const auto& tet : kTets) {
            int mask = 0;
            for (int i = 0; i < 4; ++i)
                if ((config >> tet[i]) & 1) mask |= 1 << i;
            if (mask == 0 || mask == 15) continue;

            auto edgeId = [&](int i, int j) {
                const int base = tet[i] & tet[j];
                const int dir = tet[i] ^ tet[j];
                return static_cast<std::uint8_t>(base * kSlotsPerNode + dir - 1);
            };

            int insideCount = 0;
            for (int i = 0; i < 4; ++i)
                if (mask & (1 << i)) ++insideCount;

            int m = mask;
            bool complemented = false;
            if (insideCount > 2) {
                m = (~m) & 15;
                complemented = true;
            }
            // The legacy inside reference is the centroid of the corners
            // selected by m (1 or 2 of them after complementing).
            std::uint8_t refA = 0xff, refB = 0xff;
            for (int i = 0; i < 4; ++i) {
                if (m & (1 << i)) {
                    if (refA == 0xff)
                        refA = static_cast<std::uint8_t>(tet[i]);
                    else
                        refB = static_cast<std::uint8_t>(tet[i]);
                }
            }
            const bool outward = !complemented;

            using EP = std::pair<int, int>;
            auto emit = [&](EP ea, EP eb, EP ec) {
                t.tris.push_back({{edgeId(ea.first, ea.second),
                                   edgeId(eb.first, eb.second),
                                   edgeId(ec.first, ec.second)},
                                  refA,
                                  refB,
                                  outward});
            };

            switch (m) {
                case 1:
                    emit({0, 1}, {0, 2}, {0, 3});
                    break;
                case 2:
                    emit({1, 0}, {1, 2}, {1, 3});
                    break;
                case 4:
                    emit({2, 0}, {2, 1}, {2, 3});
                    break;
                case 8:
                    emit({3, 0}, {3, 1}, {3, 2});
                    break;
                case 3:
                    emit({0, 2}, {0, 3}, {1, 3});
                    emit({0, 2}, {1, 3}, {1, 2});
                    break;
                case 5:
                    emit({0, 1}, {2, 1}, {2, 3});
                    emit({0, 1}, {2, 3}, {0, 3});
                    break;
                case 6:
                    emit({1, 0}, {2, 0}, {2, 3});
                    emit({1, 0}, {2, 3}, {1, 3});
                    break;
                case 9:
                    emit({0, 1}, {3, 1}, {3, 2});
                    emit({0, 1}, {3, 2}, {0, 2});
                    break;
                case 10:
                    emit({1, 0}, {3, 0}, {3, 2});
                    emit({1, 0}, {3, 2}, {1, 2});
                    break;
                case 12:
                    emit({2, 0}, {3, 0}, {3, 1});
                    emit({2, 0}, {3, 1}, {2, 1});
                    break;
                default:
                    break;
            }
        }
        t.count[config] =
            static_cast<std::uint8_t>(t.tris.size() - t.offset[config]);
    }
    return t;
}

const CaseTable& caseTable() {
    static const CaseTable table = buildCaseTable();
    return table;
}

// ---------------------------------------------------------------------
// Block-local two-pass extractor.
//
// The grid is tiled into blocks (the sampler's tiling when present, 8^3
// otherwise). Pass 1 builds per-block node sign rows — one 64-bit word
// of (value < iso) bits per (z, y) row — with SIMD compares over the
// contiguous x runs, then derives per-block active-cell lists and exact
// per-row vertex / triangle counts from pure word arithmetic. A serial
// prefix over those counts fixes every block's output offsets, and
// pass 2 writes vertices and table triangles directly into their final
// slots: disjoint writes, no locks, byte-identical for any worker count.
//
// Output ordering is canonical and decomposition-independent:
//   vertices   ascending (z, y, x, slot) over crossing in-range edges,
//              slot = direction - 1 of the edge's base node;
//   triangles  ascending (z, y, x) over cells, kTets / case-table order
//              within a cell.
// A crossing edge's vertex is emitted by the block owning its base node
// (node / blockSize per axis), so the vertex set is exactly "one vertex
// per crossing edge" — the same set the legacy hash dedup produces.
//
// Sign rows cover nodes [lo, min(hi + 2, res)] per axis: pass 2 assigns
// ordinals to crossing edges based at halo nodes (hi + 1) owned by
// neighbour blocks, and *their* preceding slots reach endpoints at
// hi + 2. Rows are read straight from the shared grid, so halo overlap
// costs a few redundant compares, not synchronisation.
// ---------------------------------------------------------------------

constexpr int kDenseBlockSize = 8;  // tiling when no sampler is supplied
constexpr int kMaxBlockSize = 62;   // halo row (bs + 2 bits) must fit a word

inline std::uint64_t maskBits(int n) {
    return n >= 64 ? ~0ull : ((1ull << n) - 1ull);
}

struct BlockGeom {
    Vec3i lo{};     // first owned node, per axis
    Vec3i owned{};  // owned node counts (vertex rows are owned.z * owned.y)
    Vec3i walk{};   // pass-2 node walk extent: min(hi + 1, res) - lo + 1
    Vec3i halo{};   // sign-row extent: min(hi + 2, res) - lo + 1
    Vec3i cells{};  // owned cell counts
};

struct Tiling {
    Vec3i res{};
    int bs{kDenseBlockSize};
    Vec3i nblocks{};

    Tiling(Vec3i resolution, int blockSize) : res(resolution), bs(blockSize) {
        auto div = [blockSize](int nodes) { return (nodes + blockSize - 1) / blockSize; };
        nblocks = {div(res.x + 1), div(res.y + 1), div(res.z + 1)};
    }
    std::size_t count() const {
        return static_cast<std::size_t>(nblocks.x) * nblocks.y * nblocks.z;
    }
    std::size_t index(int bx, int by, int bz) const {
        return static_cast<std::size_t>(bx) +
               static_cast<std::size_t>(nblocks.x) *
                   (static_cast<std::size_t>(by) +
                    static_cast<std::size_t>(nblocks.y) * static_cast<std::size_t>(bz));
    }
    BlockGeom geom(std::size_t b) const {
        const int bx = static_cast<int>(b % nblocks.x);
        const int by = static_cast<int>((b / nblocks.x) % nblocks.y);
        const int bz = static_cast<int>(b / (static_cast<std::size_t>(nblocks.x) * nblocks.y));
        BlockGeom g;
        g.lo = {bx * bs, by * bs, bz * bs};
        const Vec3i hi{std::min(g.lo.x + bs - 1, res.x), std::min(g.lo.y + bs - 1, res.y),
                       std::min(g.lo.z + bs - 1, res.z)};
        g.owned = {hi.x - g.lo.x + 1, hi.y - g.lo.y + 1, hi.z - g.lo.z + 1};
        g.walk = {std::min(hi.x + 1, res.x) - g.lo.x + 1,
                  std::min(hi.y + 1, res.y) - g.lo.y + 1,
                  std::min(hi.z + 1, res.z) - g.lo.z + 1};
        g.halo = {std::min(hi.x + 2, res.x) - g.lo.x + 1,
                  std::min(hi.y + 2, res.y) - g.lo.y + 1,
                  std::min(hi.z + 2, res.z) - g.lo.z + 1};
        g.cells = {std::max(0, std::min(hi.x, res.x - 1) - g.lo.x + 1),
                   std::max(0, std::min(hi.y, res.y - 1) - g.lo.y + 1),
                   std::max(0, std::min(hi.z, res.z - 1) - g.lo.z + 1)};
        return g;
    }
};

inline std::size_t gridIndex(const Vec3i& res, int x, int y, int z) {
    return (static_cast<std::size_t>(z) * (res.y + 1) + static_cast<std::size_t>(y)) *
               (res.x + 1) +
           static_cast<std::size_t>(x);
}

// Sign rows for one block: bit j of row (rz, ry) = (value(lo.x + j,
// lo.y + ry, lo.z + rz) < iso). x runs are contiguous in the grid, so
// the compare vectorises; rows are at most bs + 2 <= 64 bits.
void buildSignRows(const VoxelGrid& grid, const BlockGeom& g, float iso,
                   std::vector<std::uint64_t>& rows) {
    rows.assign(static_cast<std::size_t>(g.halo.z) * g.halo.y, 0);
    const Vec3i res = grid.resolution();
    const float* vals = grid.values().data();
    constexpr int W = 4;
    using V = geom::simd::f32xN<W>;
    const V isoW = V::broadcast(iso);
    for (int rz = 0; rz < g.halo.z; ++rz) {
        for (int ry = 0; ry < g.halo.y; ++ry) {
            const float* base = vals + gridIndex(res, g.lo.x, g.lo.y + ry, g.lo.z + rz);
            std::uint64_t w = 0;
            int x = 0;
            for (; x + W <= g.halo.x; x += W) {
                const auto m = geom::simd::cmpLt(V::load(base + x), isoW);
                std::int32_t lanes[W];
                static_assert(sizeof(m) == sizeof(lanes));
                std::memcpy(lanes, &m, sizeof(lanes));
                for (int j = 0; j < W; ++j)
                    w |= static_cast<std::uint64_t>(lanes[j] & 1) << (x + j);
            }
            for (; x < g.halo.x; ++x)
                w |= static_cast<std::uint64_t>(base[x] < iso ? 1u : 0u) << x;
            rows[static_cast<std::size_t>(rz) * g.halo.y + ry] = w;
        }
    }
}

// Crossing bits of one (z, y) node row: bit i of cw[s] is set iff the
// edge from node lo.x + i in direction s + 1 crosses the iso value and
// both endpoints are grid nodes. 'nodeBits' limits the bit range.
inline void crossWords(const std::vector<std::uint64_t>& rows, const BlockGeom& g,
                       int lz, int ly, int nodeBits, std::array<std::uint64_t, 7>& cw) {
    const std::uint64_t row = rows[static_cast<std::size_t>(lz) * g.halo.y + ly];
    const std::uint64_t nodeMask = maskBits(nodeBits);
    for (int s = 0; s < kSlotsPerNode; ++s) {
        const int dir = s + 1;
        const int dx = dir & 1;
        const int dy = (dir >> 1) & 1;
        const int dz = (dir >> 2) & 1;
        if (lz + dz >= g.halo.z || ly + dy >= g.halo.y) {
            cw[s] = 0;
            continue;
        }
        std::uint64_t w =
            (row ^ (rows[static_cast<std::size_t>(lz + dz) * g.halo.y + (ly + dy)] >> dx)) &
            nodeMask;
        if (dx != 0) w &= maskBits(g.halo.x - 1);
        cw[s] = w;
    }
}

// Pass-1 core: active-cell list, case configs and exact per-row counts,
// all from the sign rows (no field values touched).
void computeTopology(const BlockGeom& g, const CaseTable& table,
                     IsoExtractCache::Block& B) {
    B.rowVerts.assign(static_cast<std::size_t>(g.owned.z) * g.owned.y, 0);
    std::array<std::uint64_t, 7> cw;
    std::uint32_t vCount = 0;
    for (int lz = 0; lz < g.owned.z; ++lz) {
        for (int ly = 0; ly < g.owned.y; ++ly) {
            crossWords(B.signRows, g, lz, ly, g.owned.x, cw);
            int c = 0;
            for (int s = 0; s < kSlotsPerNode; ++s) c += std::popcount(cw[s]);
            B.rowVerts[static_cast<std::size_t>(lz) * g.owned.y + ly] =
                static_cast<std::uint16_t>(c);
            vCount += static_cast<std::uint32_t>(c);
        }
    }
    B.vertexCount = vCount;

    B.cells.clear();
    B.rowTris.assign(static_cast<std::size_t>(g.cells.z) * g.cells.y, 0);
    std::uint32_t tCount = 0;
    const std::uint64_t cellMask = maskBits(g.cells.x);
    for (int lz = 0; lz < g.cells.z; ++lz) {
        for (int ly = 0; ly < g.cells.y; ++ly) {
            const std::uint64_t a0 =
                B.signRows[static_cast<std::size_t>(lz) * g.halo.y + ly];
            const std::uint64_t a1 =
                B.signRows[static_cast<std::size_t>(lz) * g.halo.y + ly + 1];
            const std::uint64_t a2 =
                B.signRows[static_cast<std::size_t>(lz + 1) * g.halo.y + ly];
            const std::uint64_t a3 =
                B.signRows[static_cast<std::size_t>(lz + 1) * g.halo.y + ly + 1];
            const std::uint64_t allIn =
                a0 & (a0 >> 1) & a1 & (a1 >> 1) & a2 & (a2 >> 1) & a3 & (a3 >> 1);
            const std::uint64_t allOut = ~a0 & (~a0 >> 1) & ~a1 & (~a1 >> 1) & ~a2 &
                                         (~a2 >> 1) & ~a3 & (~a3 >> 1);
            std::uint64_t mixed = ~(allIn | allOut) & cellMask;
            std::uint16_t rowT = 0;
            while (mixed != 0) {
                const int lx = std::countr_zero(mixed);
                mixed &= mixed - 1;
                const int config =
                    static_cast<int>((a0 >> lx) & 1) |
                    (static_cast<int>((a0 >> (lx + 1)) & 1) << 1) |
                    (static_cast<int>((a1 >> lx) & 1) << 2) |
                    (static_cast<int>((a1 >> (lx + 1)) & 1) << 3) |
                    (static_cast<int>((a2 >> lx) & 1) << 4) |
                    (static_cast<int>((a2 >> (lx + 1)) & 1) << 5) |
                    (static_cast<int>((a3 >> lx) & 1) << 6) |
                    (static_cast<int>((a3 >> (lx + 1)) & 1) << 7);
                B.cells.push_back(static_cast<std::uint32_t>(lx) |
                                  (static_cast<std::uint32_t>(ly) << 6) |
                                  (static_cast<std::uint32_t>(lz) << 12) |
                                  (static_cast<std::uint32_t>(config) << 18));
                rowT = static_cast<std::uint16_t>(rowT + table.count[config]);
            }
            B.rowTris[static_cast<std::size_t>(lz) * g.cells.y + ly] = rowT;
            tCount += rowT;
        }
    }
    B.triangleCount = tCount;
    B.segBaseV.assign(B.rowVerts.size(), 0);
    B.segBaseT.assign(B.rowTris.size(), 0);
}

// Chunked fan-out: one task per chunk (ThreadPool::parallelFor submits a
// future per index, so feeding it raw block counts would drown in task
// overhead). fn(begin, end) over [0, count).
template <typename F>
void parallelChunks(core::ThreadPool* pool, std::size_t count, F&& fn) {
    if (count == 0) return;
    if (pool == nullptr || pool->size() <= 1 || count <= 1) {
        fn(std::size_t{0}, count);
        return;
    }
    const std::size_t chunks =
        std::min(count, std::max<std::size_t>(1, pool->size() * 4));
    pool->parallelFor(chunks, [&](std::size_t c) {
        fn(count * c / chunks, count * (c + 1) / chunks);
    });
}

TriMesh extractBlockImpl(const VoxelGrid& grid, const BlockSampler* sampler,
                         const IsoSurfaceOptions& options, IsoExtractCache* cache,
                         ExtractStats* stats) {
    TriMesh out;
    if (stats != nullptr) *stats = {};
    const Vec3i res = grid.resolution();
    if (res.x < 1 || res.y < 1 || res.z < 1) return out;

    const int bs = sampler != nullptr ? sampler->blockSize() : kDenseBlockSize;
    if (bs < 1 || bs > kMaxBlockSize) {
        // Exotic tiling the row words can't hold: fall back to the
        // reference path (same output up to vertex numbering).
        return extractLegacyImpl(grid, options, sampler);
    }

    const Tiling tiling(res, bs);
    const std::size_t numBlocks = tiling.count();
    const CaseTable& table = caseTable();
    const float iso = options.isoValue;

    IsoExtractCache local;
    IsoExtractCache& C = cache != nullptr ? *cache : local;
    const bool fingerprintMatches =
        C.res.x == res.x && C.res.y == res.y && C.res.z == res.z &&
        C.boundsLo.x == grid.bounds().lo.x && C.boundsLo.y == grid.bounds().lo.y &&
        C.boundsLo.z == grid.bounds().lo.z && C.boundsHi.x == grid.bounds().hi.x &&
        C.boundsHi.y == grid.bounds().hi.y && C.boundsHi.z == grid.bounds().hi.z &&
        C.isoValue == iso && C.blockSize == bs;
    if (!fingerprintMatches) {
        C.clear();
        C.res = res;
        C.boundsLo = grid.bounds().lo;
        C.boundsHi = grid.bounds().hi;
        C.isoValue = iso;
        C.blockSize = bs;
    }
    C.slot.resize(numBlocks, -1);

    // Work list: every block not certified surface-free. Certified
    // blocks hold no crossing edge anywhere in their node set (the
    // certificate's guard ball covers one node ring beyond the block),
    // so skipping them drops neither vertices nor triangles.
    const std::vector<std::uint8_t>* surfaceFree =
        sampler != nullptr ? &sampler->surfaceFree() : nullptr;
    std::vector<std::uint32_t> work;
    work.reserve(surfaceFree != nullptr ? numBlocks / 4 + 1 : numBlocks);
    for (std::size_t b = 0; b < numBlocks; ++b) {
        if (surfaceFree != nullptr && (*surfaceFree)[b] != 0) continue;
        if (C.slot[b] < 0) {
            C.slot[b] = static_cast<std::int32_t>(C.blocks.size());
            C.blocks.emplace_back();
        }
        C.blocks[static_cast<std::size_t>(C.slot[b])].epoch = C.epoch + 1;
        work.push_back(static_cast<std::uint32_t>(b));
    }
    ++C.epoch;

    // ---- Pass 1: sign rows + topology (parallel over blocks) ----
    std::atomic<std::size_t> reused{0};
    parallelChunks(options.pool, work.size(), [&](std::size_t i0, std::size_t i1) {
        std::vector<std::uint64_t> fresh;
        std::size_t reusedLocal = 0;
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t b = work[i];
            const BlockGeom g = tiling.geom(b);
            IsoExtractCache::Block& B = C.blocks[static_cast<std::size_t>(C.slot[b])];
            buildSignRows(grid, g, iso, fresh);
            if (B.valid && fresh == B.signRows) {
                ++reusedLocal;  // signs unchanged: keep topology, pass 2
                continue;       // recomputes the vertex positions anyway
            }
            B.signRows.swap(fresh);
            computeTopology(g, table, B);
            B.valid = true;
        }
        reused.fetch_add(reusedLocal, std::memory_order_relaxed);
    });

    // ---- Prefix: canonical global offsets ----
    // Per (z, y) row totals first, then an exclusive scan in row-major
    // (z, y) order, then per-block segment bases handed out left to
    // right (the work list ascends with bx fastest, so within one row
    // consecutive x segments get consecutive offset runs).
    std::vector<std::uint32_t> rowBaseV(
        static_cast<std::size_t>(res.z + 1) * (res.y + 1), 0);
    std::vector<std::uint32_t> rowBaseT(static_cast<std::size_t>(res.z) * res.y, 0);
    std::size_t blocksExtracted = 0;
    std::uint64_t activeCells = 0;
    for (const std::uint32_t b : work) {
        const BlockGeom g = tiling.geom(b);
        const IsoExtractCache::Block& B = C.blocks[static_cast<std::size_t>(C.slot[b])];
        if (B.vertexCount > 0 || !B.cells.empty()) ++blocksExtracted;
        activeCells += B.cells.size();
        for (int lz = 0; lz < g.owned.z; ++lz)
            for (int ly = 0; ly < g.owned.y; ++ly)
                rowBaseV[static_cast<std::size_t>(g.lo.z + lz) * (res.y + 1) +
                         (g.lo.y + ly)] +=
                    B.rowVerts[static_cast<std::size_t>(lz) * g.owned.y + ly];
        for (int lz = 0; lz < g.cells.z; ++lz)
            for (int ly = 0; ly < g.cells.y; ++ly)
                rowBaseT[static_cast<std::size_t>(g.lo.z + lz) * res.y + (g.lo.y + ly)] +=
                    B.rowTris[static_cast<std::size_t>(lz) * g.cells.y + ly];
    }
    std::uint64_t vTotal = 0;
    for (std::uint32_t& r : rowBaseV) {
        const std::uint32_t c = r;
        r = static_cast<std::uint32_t>(vTotal);
        vTotal += c;
    }
    std::uint64_t tTotal = 0;
    for (std::uint32_t& r : rowBaseT) {
        const std::uint32_t c = r;
        r = static_cast<std::uint32_t>(tTotal);
        tTotal += c;
    }
    for (const std::uint32_t b : work) {
        const BlockGeom g = tiling.geom(b);
        IsoExtractCache::Block& B = C.blocks[static_cast<std::size_t>(C.slot[b])];
        for (int lz = 0; lz < g.owned.z; ++lz) {
            for (int ly = 0; ly < g.owned.y; ++ly) {
                std::uint32_t& cur =
                    rowBaseV[static_cast<std::size_t>(g.lo.z + lz) * (res.y + 1) +
                             (g.lo.y + ly)];
                B.segBaseV[static_cast<std::size_t>(lz) * g.owned.y + ly] = cur;
                cur += B.rowVerts[static_cast<std::size_t>(lz) * g.owned.y + ly];
            }
        }
        for (int lz = 0; lz < g.cells.z; ++lz) {
            for (int ly = 0; ly < g.cells.y; ++ly) {
                std::uint32_t& cur =
                    rowBaseT[static_cast<std::size_t>(g.lo.z + lz) * res.y + (g.lo.y + ly)];
                B.segBaseT[static_cast<std::size_t>(lz) * g.cells.y + ly] = cur;
                cur += B.rowTris[static_cast<std::size_t>(lz) * g.cells.y + ly];
            }
        }
    }

    out.vertices.resize(vTotal);
    out.triangles.resize(tTotal);

    if (stats != nullptr) {
        stats->blocksTotal = numBlocks;
        stats->blocksExtracted = blocksExtracted;
        stats->reusedTopologyBlocks = reused.load(std::memory_order_relaxed);
        stats->activeCells = activeCells;
        stats->vertices = vTotal;
        stats->triangles = tTotal;
    }

    // ---- Pass 2: geometry into final slots (parallel over blocks) ----
    const float* vals = grid.values().data();
    parallelChunks(options.pool, work.size(), [&](std::size_t i0, std::size_t i1) {
        std::vector<std::uint32_t> edgeMap;  // reused across the chunk's blocks
        std::array<std::uint64_t, 7> cw;
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t b = work[i];
            const BlockGeom g = tiling.geom(b);
            const IsoExtractCache::Block& B =
                C.blocks[static_cast<std::size_t>(C.slot[b])];
            if (B.vertexCount == 0 && B.cells.empty()) continue;
            edgeMap.resize(static_cast<std::size_t>(g.walk.x) * g.walk.y * g.walk.z *
                           kSlotsPerNode);
            const int bx = g.lo.x / bs;

            // Edge -> global vertex index, walking rows in canonical
            // order. Rows owned by this block start at segBaseV; halo
            // rows (z or y one past the owned range) start at the owner
            // block's segBaseV — its numbering of the same row prefix is
            // identical because the crossing bits are a pure function of
            // the shared grid. Ordinals continue across the x boundary
            // into the neighbour's segment by construction of the
            // prefix. A halo row whose owner has no topology this pass
            // is certificate-empty: no crossings, nothing to index.
            for (int lz = 0; lz < g.walk.z; ++lz) {
                for (int ly = 0; ly < g.walk.y; ++ly) {
                    const int gy = g.lo.y + ly;
                    const int gz = g.lo.z + lz;
                    const bool ownRow = lz < g.owned.z && ly < g.owned.y;
                    std::uint32_t ord;
                    if (ownRow) {
                        ord = B.segBaseV[static_cast<std::size_t>(lz) * g.owned.y + ly];
                    } else {
                        const std::size_t ob = tiling.index(bx, gy / bs, gz / bs);
                        const std::int32_t os = C.slot[ob];
                        if (os < 0) continue;
                        const IsoExtractCache::Block& OB =
                            C.blocks[static_cast<std::size_t>(os)];
                        if (OB.epoch != C.epoch) continue;
                        const BlockGeom og = tiling.geom(ob);
                        ord = OB.segBaseV[static_cast<std::size_t>(gz - og.lo.z) *
                                              og.owned.y +
                                          (gy - og.lo.y)];
                    }
                    crossWords(B.signRows, g, lz, ly, g.walk.x, cw);
                    std::uint64_t u = cw[0] | cw[1] | cw[2] | cw[3] | cw[4] | cw[5] | cw[6];
                    while (u != 0) {
                        const int lx = std::countr_zero(u);
                        u &= u - 1;
                        for (int s = 0; s < kSlotsPerNode; ++s) {
                            if (((cw[s] >> lx) & 1) == 0) continue;
                            const std::uint32_t idx = ord++;
                            edgeMap[(static_cast<std::size_t>(
                                         (lz * g.walk.y + ly) * g.walk.x + lx)) *
                                        kSlotsPerNode +
                                    s] = idx;
                            if (!ownRow || lx >= g.owned.x) continue;
                            const int gx = g.lo.x + lx;
                            const int dir = s + 1;
                            const int ex = gx + (dir & 1);
                            const int ey = gy + ((dir >> 1) & 1);
                            const int ez = gz + ((dir >> 2) & 1);
                            const float vA = vals[gridIndex(res, gx, gy, gz)];
                            const float vB = vals[gridIndex(res, ex, ey, ez)];
                            const float denom = vB - vA;
                            float t = std::fabs(denom) > 1e-12f ? (iso - vA) / denom : 0.5f;
                            t = geom::clamp(t, 0.0f, 1.0f);
                            out.vertices[idx] = geom::lerp(grid.nodePosition(gx, gy, gz),
                                                           grid.nodePosition(ex, ey, ez), t);
                        }
                    }
                }
            }

            // Triangles straight from the case table; the active-cell
            // list ascends (z, y, x), so a running index per cell row
            // lands every triangle in its canonical slot. The winding
            // replays the legacy extractor's float side test on the
            // actual interpolated positions (see the case-table header).
            // Positions are recomputed here rather than read back from
            // out.vertices: a triangle may reference a halo vertex
            // another block's task is writing concurrently, and the
            // recomputation is bit-identical by construction.
            int curRow = -1;
            std::uint32_t tIdx = 0;
            for (const std::uint32_t packed : B.cells) {
                const int lx = static_cast<int>(packed & 63u);
                const int ly = static_cast<int>((packed >> 6) & 63u);
                const int lz = static_cast<int>((packed >> 12) & 63u);
                const int config = static_cast<int>((packed >> 18) & 255u);
                const int row = lz * g.cells.y + ly;
                if (row != curRow) {
                    curRow = row;
                    tIdx = B.segBaseT[static_cast<std::size_t>(row)];
                }
                auto edgePos = [&](int e) {
                    const int cornerBits = e / kSlotsPerNode;
                    const int dir = e % kSlotsPerNode + 1;
                    const int gx = g.lo.x + lx + (cornerBits & 1);
                    const int gy = g.lo.y + ly + ((cornerBits >> 1) & 1);
                    const int gz = g.lo.z + lz + ((cornerBits >> 2) & 1);
                    const int ex = gx + (dir & 1);
                    const int ey = gy + ((dir >> 1) & 1);
                    const int ez = gz + ((dir >> 2) & 1);
                    const float vA = vals[gridIndex(res, gx, gy, gz)];
                    const float vB = vals[gridIndex(res, ex, ey, ez)];
                    const float denom = vB - vA;
                    float t = std::fabs(denom) > 1e-12f ? (iso - vA) / denom : 0.5f;
                    t = geom::clamp(t, 0.0f, 1.0f);
                    return geom::lerp(grid.nodePosition(gx, gy, gz),
                                      grid.nodePosition(ex, ey, ez), t);
                };
                auto cornerPos = [&](int c) {
                    return grid.nodePosition(g.lo.x + lx + (c & 1),
                                             g.lo.y + ly + ((c >> 1) & 1),
                                             g.lo.z + lz + ((c >> 2) & 1));
                };
                const std::uint16_t off = table.offset[config];
                const int n = table.count[config];
                for (int k = 0; k < n; ++k) {
                    const CaseTable::Tri& tri = table.tris[off + k];
                    std::uint32_t id[3];
                    for (int v = 0; v < 3; ++v) {
                        const int cornerBits = tri.e[v] / kSlotsPerNode;
                        const int s = tri.e[v] % kSlotsPerNode;
                        const int nx = lx + (cornerBits & 1);
                        const int ny = ly + ((cornerBits >> 1) & 1);
                        const int nz = lz + ((cornerBits >> 2) & 1);
                        id[v] = edgeMap[(static_cast<std::size_t>(
                                             (nz * g.walk.y + ny) * g.walk.x + nx)) *
                                            kSlotsPerNode +
                                        s];
                    }
                    // Legacy emitTriangle, bit for bit: same inside
                    // reference (centroid of 1 or 2 corners — += then
                    // /= count, both exact re-associations), same cross
                    // / dot order, same comparison.
                    Vec3f insideRef = cornerPos(tri.refA);
                    if (tri.refB != 0xff) {
                        insideRef += cornerPos(tri.refB);
                        insideRef /= 2.0f;
                    }
                    const Vec3f pa = edgePos(tri.e[0]);
                    const Vec3f pb = edgePos(tri.e[1]);
                    const Vec3f pc = edgePos(tri.e[2]);
                    const Vec3f nrm = (pb - pa).cross(pc - pa);
                    const Vec3f centroid = (pa + pb + pc) / 3.0f;
                    const float side = nrm.dot(centroid - insideRef);
                    const bool flip = tri.outward ? side < 0.0f : side > 0.0f;
                    out.triangles[tIdx++] = flip ? Triangle{id[0], id[2], id[1]}
                                                 : Triangle{id[0], id[1], id[2]};
                }
            }
        }
    });

    // Renumber vertices by first use in the (canonical) triangle stream.
    // The lattice (z, y, x, slot) numbering the passes emit under is
    // convenient for disjoint writes but spreads a triangle's indices
    // across whole grid rows, which ruins the delta locality the mesh
    // codec's varint stage feeds on. First-use order restores the legacy
    // extractor's index locality and is still a pure function of the
    // canonical triangle order, so worker-count and block-decomposition
    // invariance are untouched.
    if (vTotal > 0) {
        constexpr std::uint32_t kUnseen = 0xffffffffu;
        std::vector<std::uint32_t> remap(vTotal, kUnseen);
        std::vector<Vec3f> reordered(vTotal);
        std::uint32_t next = 0;
        for (Triangle& tri : out.triangles) {
            for (std::uint32_t* idx : {&tri.a, &tri.b, &tri.c}) {
                std::uint32_t& r = remap[*idx];
                if (r == kUnseen) {
                    r = next;
                    reordered[next] = out.vertices[*idx];
                    ++next;
                }
                *idx = r;
            }
        }
        // Every crossing edge is referenced by an active tet, so this
        // loop only runs on malformed input; kept for safety.
        for (std::size_t v = 0; v < vTotal; ++v) {
            if (remap[v] == kUnseen) reordered[next++] = out.vertices[v];
        }
        out.vertices = std::move(reordered);
    }

    // Same post-pass as the legacy extractor, in the same order.
    out.removeDegenerateTriangles();

    if (!options.orientOutward) {
        for (Triangle& tri : out.triangles) std::swap(tri.b, tri.c);
    }

    if (options.weldVertices) {
        const float eps = 1e-5f * grid.bounds().diagonal();
        out.weldVertices(eps);
    }
    out.computeVertexNormals();
    return out;
}

}  // namespace

TriMesh extractIsoSurface(const VoxelGrid& grid, const BlockSampler* sampler,
                          const IsoSurfaceOptions& options, IsoExtractCache* cache,
                          ExtractStats* stats) {
    return extractBlockImpl(grid, sampler, options, cache, stats);
}

TriMesh extractIsoSurface(const VoxelGrid& grid, const IsoSurfaceOptions& options) {
    return extractBlockImpl(grid, nullptr, options, nullptr, nullptr);
}

TriMesh extractIsoSurface(const VoxelGrid& grid, const BlockSampler& sampler,
                          const IsoSurfaceOptions& options) {
    return extractBlockImpl(grid, &sampler, options, nullptr, nullptr);
}

TriMesh extractIsoSurface(const ScalarField& field, const geom::AABB& bounds,
                          int resolution, const IsoSurfaceOptions& options) {
    VoxelGrid grid(bounds, {resolution, resolution, resolution});
    if (options.batch)
        grid.sample(field, options.batch, options.pool);
    else
        grid.sample(field);
    return extractIsoSurface(grid, options);
}

TriMesh extractIsoSurface(const ScalarField& field, const geom::AABB& bounds,
                          int resolution, const IsoSurfaceOptions& options,
                          const FieldSampleOptions& sampling,
                          FieldSampleStats* stats) {
    VoxelGrid grid(bounds, {resolution, resolution, resolution});
    BlockSampler sampler(grid, sampling.blockSize);
    const FieldSampleStats s = sampler.sample(field, sampling);
    if (stats != nullptr) *stats = s;
    return extractIsoSurface(grid, sampler, options);
}

TriMesh extractIsoSurfaceLegacy(const VoxelGrid& grid, const IsoSurfaceOptions& options) {
    return extractLegacyImpl(grid, options, nullptr);
}

TriMesh extractIsoSurfaceLegacy(const VoxelGrid& grid, const BlockSampler& sampler,
                                const IsoSurfaceOptions& options) {
    return extractLegacyImpl(grid, options, &sampler);
}

}  // namespace semholo::mesh
