#include "semholo/mesh/simplify.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

namespace semholo::mesh {

namespace {

// Symmetric 4x4 quadric, 10 unique coefficients:
// [a b c d; b e f g; c f h i; d g i j].
struct Quadric {
    double a{}, b{}, c{}, d{}, e{}, f{}, g{}, h{}, i{}, j{};

    void addPlane(double nx, double ny, double nz, double w, double area) {
        a += area * nx * nx;
        b += area * nx * ny;
        c += area * nx * nz;
        d += area * nx * w;
        e += area * ny * ny;
        f += area * ny * nz;
        g += area * ny * w;
        h += area * nz * nz;
        i += area * nz * w;
        j += area * w * w;
    }
    Quadric operator+(const Quadric& o) const {
        Quadric r = *this;
        r.a += o.a; r.b += o.b; r.c += o.c; r.d += o.d; r.e += o.e;
        r.f += o.f; r.g += o.g; r.h += o.h; r.i += o.i; r.j += o.j;
        return r;
    }
    double evaluate(Vec3f v) const {
        const double x = v.x, y = v.y, z = v.z;
        return a * x * x + 2 * b * x * y + 2 * c * x * z + 2 * d * x + e * y * y +
               2 * f * y * z + 2 * g * y + h * z * z + 2 * i * z + j;
    }
    // Solve for the minimising position; false when (near-)singular.
    bool optimalPosition(Vec3f& out) const {
        // 3x3 system [a b c; b e f; c f h] v = -[d g i].
        const double det = a * (e * h - f * f) - b * (b * h - f * c) +
                           c * (b * f - e * c);
        if (std::fabs(det) < 1e-12) return false;
        const double inv = 1.0 / det;
        const double rx = -(d * (e * h - f * f) - g * (b * h - c * f) +
                            i * (b * f - c * e)) * inv;
        const double ry = -(a * (g * h - i * f) - b * (d * h - i * c) +
                            c * (d * f - g * c)) * inv;
        const double rz = -(a * (e * i - f * g) - b * (b * i - c * g) +
                            d * (b * f - c * e)) * inv;
        if (!std::isfinite(rx) || !std::isfinite(ry) || !std::isfinite(rz))
            return false;
        out = {static_cast<float>(rx), static_cast<float>(ry),
               static_cast<float>(rz)};
        return true;
    }
};

struct Candidate {
    double cost;
    std::uint32_t v1, v2;
    Vec3f position;
    std::uint64_t stamp;  // sum of vertex versions at enqueue time
    bool operator>(const Candidate& o) const { return cost > o.cost; }
};

}  // namespace

SimplifyResult simplify(const TriMesh& input, const SimplifyOptions& options) {
    SimplifyResult result;
    TriMesh work = input;
    if (work.triangleCount() <= options.targetTriangles) {
        result.mesh = std::move(work);
        return result;
    }
    const bool hasColors = work.hasColors();

    // Per-vertex quadrics from incident face planes.
    std::vector<Quadric> quadrics(work.vertexCount());
    for (const Triangle& t : work.triangles) {
        const Vec3f n = work.triangleNormal(t);
        const float area = work.triangleArea(t);
        const double w = -static_cast<double>(n.dot(work.vertices[t.a]));
        for (const std::uint32_t v : {t.a, t.b, t.c})
            quadrics[v].addPlane(n.x, n.y, n.z, w, area);
    }

    // Adjacency: triangles per vertex (indices into work.triangles).
    std::vector<std::vector<std::uint32_t>> facesOf(work.vertexCount());
    for (std::uint32_t ti = 0; ti < work.triangleCount(); ++ti) {
        const Triangle& t = work.triangles[ti];
        facesOf[t.a].push_back(ti);
        facesOf[t.b].push_back(ti);
        facesOf[t.c].push_back(ti);
    }
    std::vector<bool> faceAlive(work.triangleCount(), true);
    std::vector<std::uint32_t> version(work.vertexCount(), 0);
    std::vector<std::uint32_t> remap(work.vertexCount());
    for (std::uint32_t v = 0; v < work.vertexCount(); ++v) remap[v] = v;

    auto resolve = [&remap](std::uint32_t v) {
        while (remap[v] != v) v = remap[v];
        return v;
    };

    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> heap;
    auto enqueue = [&](std::uint32_t v1, std::uint32_t v2) {
        v1 = resolve(v1);
        v2 = resolve(v2);
        if (v1 == v2) return;
        const Quadric q = quadrics[v1] + quadrics[v2];
        Vec3f pos;
        if (!q.optimalPosition(pos))
            pos = (work.vertices[v1] + work.vertices[v2]) * 0.5f;
        heap.push({q.evaluate(pos), v1, v2, pos,
                   static_cast<std::uint64_t>(version[v1]) + version[v2]});
    };

    std::set<std::pair<std::uint32_t, std::uint32_t>> seeded;
    for (const Triangle& t : work.triangles) {
        auto seed = [&](std::uint32_t a, std::uint32_t b) {
            if (a > b) std::swap(a, b);
            if (seeded.insert({a, b}).second) enqueue(a, b);
        };
        seed(t.a, t.b);
        seed(t.b, t.c);
        seed(t.c, t.a);
    }

    std::size_t aliveTriangles = work.triangleCount();
    while (aliveTriangles > options.targetTriangles && !heap.empty()) {
        const Candidate cand = heap.top();
        heap.pop();
        const std::uint32_t v1 = resolve(cand.v1);
        const std::uint32_t v2 = resolve(cand.v2);
        if (v1 == v2) continue;
        // Lazy invalidation: stale if either vertex changed since enqueue.
        if (static_cast<std::uint64_t>(version[v1]) + version[v2] != cand.stamp ||
            v1 != cand.v1 || v2 != cand.v2)
            continue;

        // Normal-flip guard over surviving faces of both vertices.
        bool flips = false;
        for (const std::uint32_t vi : {v1, v2}) {
            for (const std::uint32_t ti : facesOf[vi]) {
                if (!faceAlive[ti]) continue;
                Triangle t = work.triangles[ti];
                t.a = resolve(t.a);
                t.b = resolve(t.b);
                t.c = resolve(t.c);
                // Faces containing both vertices die; skip them.
                const bool hasV1 = t.a == v1 || t.b == v1 || t.c == v1;
                const bool hasV2 = t.a == v2 || t.b == v2 || t.c == v2;
                if (hasV1 && hasV2) continue;
                const Vec3f before = work.triangleNormal(t);
                Triangle moved = t;
                auto sub = [&](std::uint32_t& idx) {
                    if (idx == v1 || idx == v2) idx = v1;  // v1 is kept
                };
                sub(moved.a);
                sub(moved.b);
                sub(moved.c);
                const Vec3f oldPos = work.vertices[v1];
                work.vertices[v1] = cand.position;
                const Vec3f after = work.triangleNormal(moved);
                work.vertices[v1] = oldPos;
                if (before.dot(after) < options.maxNormalFlipCos) {
                    flips = true;
                    break;
                }
            }
            if (flips) break;
        }
        if (flips) {
            ++result.collapsesRejected;
            continue;
        }

        // Apply: merge v2 into v1 at the optimal position.
        work.vertices[v1] = cand.position;
        if (hasColors)
            work.colors[v1] = (work.colors[v1] + work.colors[v2]) * 0.5f;
        quadrics[v1] = quadrics[v1] + quadrics[v2];
        remap[v2] = v1;
        ++version[v1];

        // Kill degenerate faces; move v2's faces to v1.
        for (const std::uint32_t ti : facesOf[v2]) {
            if (!faceAlive[ti]) continue;
            Triangle t = work.triangles[ti];
            const std::uint32_t a = resolve(t.a), b = resolve(t.b), c = resolve(t.c);
            if (a == b || b == c || a == c) {
                faceAlive[ti] = false;
                --aliveTriangles;
            } else {
                facesOf[v1].push_back(ti);
            }
        }
        ++result.collapsesApplied;

        // Refresh candidate edges around the merged vertex.
        std::set<std::uint32_t> neighbors;
        for (const std::uint32_t ti : facesOf[v1]) {
            if (!faceAlive[ti]) continue;
            const Triangle& t = work.triangles[ti];
            for (const std::uint32_t v : {t.a, t.b, t.c}) {
                const std::uint32_t rv = resolve(v);
                if (rv != v1) neighbors.insert(rv);
            }
        }
        for (const std::uint32_t n : neighbors) enqueue(v1, n);
    }

    // Compact the result.
    std::vector<std::uint32_t> newIndex(work.vertexCount(),
                                        std::numeric_limits<std::uint32_t>::max());
    TriMesh out;
    for (std::uint32_t ti = 0; ti < work.triangleCount(); ++ti) {
        if (!faceAlive[ti]) continue;
        Triangle t = work.triangles[ti];
        std::array<std::uint32_t, 3> vs{resolve(t.a), resolve(t.b), resolve(t.c)};
        if (vs[0] == vs[1] || vs[1] == vs[2] || vs[0] == vs[2]) continue;
        Triangle nt;
        std::uint32_t* slots[3] = {&nt.a, &nt.b, &nt.c};
        for (int k = 0; k < 3; ++k) {
            const std::uint32_t v = vs[static_cast<std::size_t>(k)];
            if (newIndex[v] == std::numeric_limits<std::uint32_t>::max()) {
                newIndex[v] = static_cast<std::uint32_t>(out.vertices.size());
                out.vertices.push_back(work.vertices[v]);
                if (hasColors) out.colors.push_back(work.colors[v]);
            }
            *slots[k] = newIndex[v];
        }
        out.triangles.push_back(nt);
    }
    out.computeVertexNormals();
    result.mesh = std::move(out);
    return result;
}

}  // namespace semholo::mesh
