#include "semholo/mesh/sampling.hpp"

#include <cmath>
#include <random>

#include "semholo/mesh/kdtree.hpp"

namespace semholo::mesh {

PointCloud sampleSurface(const TriMesh& mesh, std::size_t count, std::uint64_t seed) {
    PointCloud out;
    if (mesh.triangles.empty() || count == 0) return out;

    // Cumulative area distribution for area-weighted triangle selection.
    std::vector<double> cumArea(mesh.triangles.size());
    double total = 0.0;
    for (std::size_t i = 0; i < mesh.triangles.size(); ++i) {
        total += mesh.triangleArea(mesh.triangles[i]);
        cumArea[i] = total;
    }
    if (total <= 0.0) return out;

    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uniArea(0.0, total);
    std::uniform_real_distribution<float> uni01(0.0f, 1.0f);

    const bool carryColors = mesh.hasColors();
    out.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
        const double r = uniArea(rng);
        const auto it = std::lower_bound(cumArea.begin(), cumArea.end(), r);
        const std::size_t ti =
            static_cast<std::size_t>(std::distance(cumArea.begin(), it));
        const Triangle& t = mesh.triangles[std::min(ti, mesh.triangles.size() - 1)];

        // Uniform barycentric sampling via square-root warp.
        float u = uni01(rng), v = uni01(rng);
        const float su = std::sqrt(u);
        const float b0 = 1.0f - su;
        const float b1 = su * (1.0f - v);
        const float b2 = su * v;

        out.points.push_back(mesh.vertices[t.a] * b0 + mesh.vertices[t.b] * b1 +
                             mesh.vertices[t.c] * b2);
        out.normals.push_back(mesh.triangleNormal(t));
        if (carryColors)
            out.colors.push_back(mesh.colors[t.a] * b0 + mesh.colors[t.b] * b1 +
                                 mesh.colors[t.c] * b2);
    }
    return out;
}

PointCloud decimateByDistance(const PointCloud& cloud, float minDistance) {
    PointCloud out;
    if (cloud.empty() || minDistance <= 0.0f) return cloud;
    const float d2 = minDistance * minDistance;
    // Greedy: keep a point if no already-kept point is within range.
    // Rebuilding the tree periodically keeps queries near O(log n).
    std::vector<Vec3f> kept;
    KdTree tree;
    std::size_t lastBuild = 0;
    for (std::size_t i = 0; i < cloud.points.size(); ++i) {
        const Vec3f& p = cloud.points[i];
        bool blocked = false;
        if (!tree.empty()) {
            const auto hit = tree.nearest(p);
            blocked = hit.valid() && hit.distance2 < d2;
        }
        if (!blocked) {
            // Linear scan over points added since the last tree rebuild.
            for (std::size_t j = lastBuild; j < kept.size() && !blocked; ++j)
                blocked = (kept[j] - p).norm2() < d2;
        }
        if (blocked) continue;
        kept.push_back(p);
        out.points.push_back(p);
        if (cloud.hasNormals()) out.normals.push_back(cloud.normals[i]);
        if (cloud.hasColors()) out.colors.push_back(cloud.colors[i]);
        if (kept.size() - lastBuild > 256) {
            tree.build(kept);
            lastBuild = kept.size();
        }
    }
    return out;
}

}  // namespace semholo::mesh
