#include "semholo/mesh/voxelgrid.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/blocksampler.hpp"

namespace semholo::mesh {

VoxelGrid::VoxelGrid(const AABB& bounds, Vec3i resolution)
    : bounds_(bounds), res_(resolution) {
    const Vec3f ext = bounds.extent();
    cell_ = {ext.x / static_cast<float>(std::max(1, res_.x)),
             ext.y / static_cast<float>(std::max(1, res_.y)),
             ext.z / static_cast<float>(std::max(1, res_.z))};
    values_.assign(static_cast<std::size_t>(res_.x + 1) *
                       static_cast<std::size_t>(res_.y + 1) *
                       static_cast<std::size_t>(res_.z + 1),
                   0.0f);
}

void VoxelGrid::sample(const ScalarField& field, core::ThreadPool* pool) {
    if (pool != nullptr) {
        FieldSampleOptions opt;
        opt.pool = pool;
        opt.blockPruning = false;  // dense: no bound needed, still parallel
        BlockSampler(*this, opt.blockSize).sample(field, opt);
        return;
    }
    for (int z = 0; z <= res_.z; ++z)
        for (int y = 0; y <= res_.y; ++y)
            for (int x = 0; x <= res_.x; ++x)
                values_[index(x, y, z)] = field(nodePosition(x, y, z));
}

void VoxelGrid::sample(const ScalarField& field, const BatchScalarField& batch,
                       core::ThreadPool* pool) {
    if (!batch) {
        sample(field, pool);
        return;
    }
    if (values_.empty()) return;
    const int nx = res_.x + 1;
    const int nyNodes = res_.y + 1;
    const int nzNodes = res_.z + 1;

    // x coordinates are shared by every row; y/z are constant per row.
    std::vector<float> xs(static_cast<std::size_t>(nx));
    for (int x = 0; x < nx; ++x) xs[static_cast<std::size_t>(x)] = nodePosition(x, 0, 0).x;

    auto samplePlanes = [&](std::size_t z0, std::size_t z1) {
        std::vector<float> ys(static_cast<std::size_t>(nx));
        std::vector<float> zs(static_cast<std::size_t>(nx));
        for (std::size_t z = z0; z < z1; ++z) {
            for (int y = 0; y < nyNodes; ++y) {
                const Vec3f row = nodePosition(0, y, static_cast<int>(z));
                std::fill(ys.begin(), ys.end(), row.y);
                std::fill(zs.begin(), zs.end(), row.z);
                batch(xs.data(), ys.data(), zs.data(),
                      values_.data() + index(0, y, static_cast<int>(z)),
                      static_cast<std::size_t>(nx));
            }
        }
    };

    const auto planes = static_cast<std::size_t>(nzNodes);
    if (pool == nullptr || pool->size() <= 1 || planes <= 1) {
        samplePlanes(0, planes);
        return;
    }
    core::ThreadPool& p = *pool;
    const std::size_t chunks = std::min(planes, std::max<std::size_t>(1, p.size() * 4));
    p.parallelFor(chunks, [&](std::size_t c) {
        samplePlanes(planes * c / chunks, planes * (c + 1) / chunks);
    });
}

FieldSampleStats VoxelGrid::sampleSparse(const ScalarField& field,
                                         const FieldSampleOptions& options) {
    return BlockSampler(*this, options.blockSize).sample(field, options);
}

Vec3f VoxelGrid::nodePosition(int x, int y, int z) const {
    return {bounds_.lo.x + cell_.x * static_cast<float>(x),
            bounds_.lo.y + cell_.y * static_cast<float>(y),
            bounds_.lo.z + cell_.z * static_cast<float>(z)};
}

float VoxelGrid::interpolate(Vec3f p) const {
    if (values_.empty()) return 0.0f;
    const Vec3f local{(p.x - bounds_.lo.x) / cell_.x, (p.y - bounds_.lo.y) / cell_.y,
                      (p.z - bounds_.lo.z) / cell_.z};
    const int x0 = geom::clamp(static_cast<int>(std::floor(local.x)), 0, res_.x - 1);
    const int y0 = geom::clamp(static_cast<int>(std::floor(local.y)), 0, res_.y - 1);
    const int z0 = geom::clamp(static_cast<int>(std::floor(local.z)), 0, res_.z - 1);
    const float tx = geom::clamp(local.x - static_cast<float>(x0), 0.0f, 1.0f);
    const float ty = geom::clamp(local.y - static_cast<float>(y0), 0.0f, 1.0f);
    const float tz = geom::clamp(local.z - static_cast<float>(z0), 0.0f, 1.0f);

    auto v = [&](int dx, int dy, int dz) { return at(x0 + dx, y0 + dy, z0 + dz); };
    const float c00 = geom::lerp(v(0, 0, 0), v(1, 0, 0), tx);
    const float c10 = geom::lerp(v(0, 1, 0), v(1, 1, 0), tx);
    const float c01 = geom::lerp(v(0, 0, 1), v(1, 0, 1), tx);
    const float c11 = geom::lerp(v(0, 1, 1), v(1, 1, 1), tx);
    const float c0 = geom::lerp(c00, c10, ty);
    const float c1 = geom::lerp(c01, c11, ty);
    return geom::lerp(c0, c1, tz);
}

}  // namespace semholo::mesh
