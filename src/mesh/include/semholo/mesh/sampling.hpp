// Deterministic surface sampling utilities.
#pragma once

#include <cstdint>

#include "semholo/mesh/pointcloud.hpp"
#include "semholo/mesh/trimesh.hpp"

namespace semholo::mesh {

// Area-weighted uniform sampling of the mesh surface. Carries normals
// (face normals) and interpolated colours when present.
PointCloud sampleSurface(const TriMesh& mesh, std::size_t count, std::uint64_t seed = 1);

// Poisson-disk-like decimation: greedy selection keeping points at least
// 'minDistance' apart (order deterministic given the input order).
PointCloud decimateByDistance(const PointCloud& cloud, float minDistance);

}  // namespace semholo::mesh
