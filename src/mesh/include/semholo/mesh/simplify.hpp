// Quadric-error-metric mesh simplification (Garland-Heckbert edge
// collapse). Produces the level-of-detail ladder the adaptive
// traditional channel streams: the same subject at a fraction of the
// triangle budget, with positions chosen to minimise the accumulated
// plane-distance quadric.
#pragma once

#include "semholo/mesh/trimesh.hpp"

namespace semholo::mesh {

struct SimplifyOptions {
    // Stop when this many triangles remain.
    std::size_t targetTriangles{1000};
    // Reject collapses that flip any incident face normal by more than
    // this cosine bound (guards against fold-overs).
    float maxNormalFlipCos{-0.2f};
};

struct SimplifyResult {
    TriMesh mesh;
    std::size_t collapsesApplied{};
    std::size_t collapsesRejected{};
};

// Simplify a triangle mesh in one pass of greedy minimum-cost edge
// collapses. Vertex colours are carried through (collapsed vertices
// average their colours).
SimplifyResult simplify(const TriMesh& input, const SimplifyOptions& options = {});

}  // namespace semholo::mesh
