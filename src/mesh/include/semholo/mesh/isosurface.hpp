// Iso-surface extraction from a sampled scalar field.
//
// We use marching tetrahedra (each cube split into 6 tetrahedra) rather
// than table-driven marching cubes over 256 cube cases with ambiguous
// configurations: the tetrahedral cases are unambiguous and the cost
// profile is the identical O(R^3) that the paper's Figure 4 measures.
// Extracted meshes are watertight wherever the field's zero level set
// lies strictly inside the grid.
//
// The production extractor is two-pass, block-local and table-driven
// (see isosurface.cpp for the layout):
//
//   pass 1  per-block node sign rows (SIMD compares over the sampled
//           planes) -> active-cell lists + exact per-row vertex and
//           triangle counts;
//   pass 2  geometry emitted from a per-cube case table (windings decided
//           by replaying the legacy per-triangle orientation test, bit
//           for bit), vertices direct-indexed by (node, edge direction)
//           instead of hashed, written at offsets fixed by prefix sums.
//
// Output ordering is canonical — triangles in cell scan order, vertices
// numbered by first use in that triangle stream — so the mesh is
// byte-identical for any worker count AND any block decomposition, which
// is what keeps the dense/sparse and cached/fresh bit-identity
// guarantees intact (and keeps the index deltas the mesh codec feeds on
// as local as the legacy extractor's).
// The previous serial extractor is retained as extractIsoSurfaceLegacy
// for differential tests and the within-run benchmark baseline.
#pragma once

#include "semholo/mesh/blocksampler.hpp"
#include "semholo/mesh/trimesh.hpp"
#include "semholo/mesh/voxelgrid.hpp"

namespace semholo::core {
class ThreadPool;
}  // namespace semholo::core

namespace semholo::mesh {

struct IsoSurfaceOptions {
    float isoValue{0.0f};
    // Merge epsilon-coincident vertices after extraction. The extractor
    // already emits exactly one vertex per crossing node edge, so shared
    // cell and block boundaries are welded by construction; this pass
    // only merges vertices from *distinct* edges that land on the same
    // point (a surface passing exactly through a grid node). Kept on by
    // default for user-supplied grids; the reconstruction pipeline opts
    // out (its smooth capsule fields never hit nodes exactly) and saves
    // re-hashing the full vertex set every frame.
    bool weldVertices{true};
    // Orient triangles so normals point towards decreasing field values
    // (outward for signed distance fields negative inside).
    bool orientOutward{true};
    // Worker pool the block-local extractor fans out over; nullptr runs
    // serially. Output is byte-identical for any worker count.
    core::ThreadPool* pool{nullptr};
    // Optional SoA batch evaluator paired with the field (must be
    // bit-identical per point — see BatchScalarField). When set, the
    // dense field convenience overload samples grid rows through it
    // instead of one std::function dispatch per node.
    BatchScalarField batch;
};

// Counters from one extraction pass.
struct ExtractStats {
    std::size_t blocksTotal{};           // blocks tiled over the grid
    std::size_t blocksExtracted{};       // blocks holding >= 1 crossing edge
    std::size_t reusedTopologyBlocks{};  // cache hits: sign rows unchanged
    std::uint64_t activeCells{};         // mixed-sign cells emitted from
    std::uint64_t vertices{};            // crossing-edge vertices emitted
    std::uint64_t triangles{};           // table triangles emitted (pre-cleanup)
};

// Persistent per-block topology cache for repeated extraction over one
// grid (recon::SparseReconstructor owns one per session). When a block
// re-samples but its halo node signs are unchanged, its active-cell
// list, case configs and per-row counts are reused and only vertex
// positions are recomputed. Contents are an implementation detail of
// extractIsoSurface; callers only construct, pass and clear() it.
class IsoExtractCache {
public:
    void clear() {
        slot.clear();
        blocks.clear();
        res = {-1, -1, -1};
        epoch = 0;
    }

    // -- internal state (managed by extractIsoSurface) --
    struct Block {
        bool valid{false};
        std::uint32_t epoch{0};  // last extraction pass this block was live in
        std::vector<std::uint64_t> signRows;  // halo sign bits, (z,y) rows
        std::vector<std::uint32_t> cells;     // packed active cells + configs
        std::vector<std::uint16_t> rowVerts;  // crossing edges per owned node row
        std::vector<std::uint16_t> rowTris;   // table triangles per owned cell row
        std::vector<std::uint32_t> segBaseV;  // per-row global vertex offsets
        std::vector<std::uint32_t> segBaseT;  // per-row global triangle offsets
        std::uint32_t vertexCount{0};
        std::uint32_t triangleCount{0};
    };
    // Grid fingerprint the cached topology is valid for.
    Vec3i res{-1, -1, -1};
    Vec3f boundsLo{}, boundsHi{};
    float isoValue{0.0f};
    int blockSize{0};
    std::uint32_t epoch{0};          // extraction pass counter
    std::vector<std::int32_t> slot;  // block index -> blocks[] entry or -1
    std::vector<Block> blocks;
};

// Full-control entry point: extract the iso-surface of a sampled grid.
// 'sampler' (optional) must tile 'grid'; cells in blocks it certified
// surface-free are skipped — provably without changing the output.
// 'cache' (optional) enables sign-unchanged topology reuse across calls
// on the same grid. 'stats' (optional) receives the pass counters.
TriMesh extractIsoSurface(const VoxelGrid& grid, const BlockSampler* sampler,
                          const IsoSurfaceOptions& options,
                          IsoExtractCache* cache, ExtractStats* stats);

// Extract the iso-surface of a sampled grid.
TriMesh extractIsoSurface(const VoxelGrid& grid, const IsoSurfaceOptions& options = {});

// Sparse extraction: skip every cell inside a block the sampler
// certified surface-free (BlockSampler::surfaceFree). Certified blocks
// provably contain no iso-crossing anywhere in their guard region, so
// the dense pass would emit nothing from those cells; the result is
// bit-identical to the dense extraction while the cell scan drops from
// O(R^3) to the blocks near the surface. 'sampler' must tile 'grid'.
TriMesh extractIsoSurface(const VoxelGrid& grid, const BlockSampler& sampler,
                          const IsoSurfaceOptions& options = {});

// Convenience: sample 'field' over 'bounds' at cubic resolution
// 'resolution' and extract. This is the paper's "reconstruct mesh at
// output resolution R" operation (Figures 2 and 4). Dense; sampling
// goes through options.batch (SoA SIMD kernel) when set, one field
// call per node otherwise.
TriMesh extractIsoSurface(const ScalarField& field, const geom::AABB& bounds,
                          int resolution, const IsoSurfaceOptions& options = {});

// Sparse/parallel variant: samples through the block sampler (Lipschitz
// block pruning + worker-pool fan-out per 'sampling') before extraction.
// With a valid Lipschitz bound the result is bit-identical to the dense
// overload. 'stats' (optional) receives the sampling counters.
TriMesh extractIsoSurface(const ScalarField& field, const geom::AABB& bounds,
                          int resolution, const IsoSurfaceOptions& options,
                          const FieldSampleOptions& sampling,
                          FieldSampleStats* stats = nullptr);

// Reference implementation: the original serial cell scan with hashed
// edge dedup and per-triangle geometric orientation. Retained for
// differential testing and as the within-run baseline of the extraction
// benchmarks; emits the same triangle set as the block extractor (equal
// under canonicalTriangleSoup) with a different vertex numbering.
TriMesh extractIsoSurfaceLegacy(const VoxelGrid& grid,
                                const IsoSurfaceOptions& options = {});
TriMesh extractIsoSurfaceLegacy(const VoxelGrid& grid, const BlockSampler& sampler,
                                const IsoSurfaceOptions& options = {});

}  // namespace semholo::mesh
