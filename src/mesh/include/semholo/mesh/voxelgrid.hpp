// Dense scalar voxel grid over an AABB, used to sample implicit body
// fields before iso-surface extraction. Resolution here is the paper's
// Figure 2/4 knob: an R-resolution reconstruction samples R^3 voxels.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "semholo/geometry/transform.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::core {
class ThreadPool;
}  // namespace semholo::core

namespace semholo::mesh {

using geom::AABB;
using geom::Vec3f;
using geom::Vec3i;

// A scalar field sampled at arbitrary 3D points (signed distance,
// occupancy, density...). Field closures must be safe to call from
// multiple threads concurrently (pure w.r.t. captured state, or using
// atomics for instrumentation): the samplers below fan evaluations out
// over a worker pool.
using ScalarField = std::function<float(Vec3f)>;

// SoA batch companion to ScalarField: evaluate n query points given as
// separate x/y/z arrays, writing n results to 'out'. Implementations
// must return, per point, exactly the value the paired ScalarField
// returns (bit-identical), so samplers may mix the two freely. Same
// thread-safety requirement as ScalarField.
using BatchScalarField = std::function<void(
    const float* xs, const float* ys, const float* zs, float* out, std::size_t n)>;

struct FieldSampleOptions;
struct FieldSampleStats;

class VoxelGrid {
public:
    VoxelGrid() = default;
    VoxelGrid(const AABB& bounds, Vec3i resolution);

    // Sample 'field' at every grid node. This is the O(R^3) step that
    // dominates reconstruction time in Figure 4. 'pool' fans node blocks
    // out over workers (nullptr = serial); results are identical for any
    // worker count.
    void sample(const ScalarField& field, core::ThreadPool* pool = nullptr);

    // Batch sampling: feed whole x rows of node positions through a SoA
    // batch evaluator (one call per row instead of one std::function
    // dispatch per node). 'batch' must be the bit-identical companion of
    // 'field' (see BatchScalarField); the positions handed to it are
    // exactly nodePosition(x, y, z), so the sampled grid equals the
    // per-node path's. Falls back to sample(field, pool) when 'batch' is
    // empty. 'pool' fans z planes out over workers (nullptr = serial);
    // results are identical for any worker count.
    void sample(const ScalarField& field, const BatchScalarField& batch,
                core::ThreadPool* pool = nullptr);

    // Block-sparse sampling: evaluates block centers first and skips
    // whole blocks certified surface-free by the field's Lipschitz bound
    // (see blocksampler.hpp for the bound and the exactness argument).
    // Returns per-pass stats (blocks skipped, nodes evaluated).
    FieldSampleStats sampleSparse(const ScalarField& field,
                                  const FieldSampleOptions& options);

    Vec3i resolution() const { return res_; }
    const AABB& bounds() const { return bounds_; }
    std::size_t nodeCount() const { return values_.size(); }

    // Node coordinates are inclusive of both faces: (res+1)^3 nodes.
    float& at(int x, int y, int z) { return values_[index(x, y, z)]; }
    float at(int x, int y, int z) const { return values_[index(x, y, z)]; }

    Vec3f nodePosition(int x, int y, int z) const;
    Vec3f cellSize() const { return cell_; }

    // Trilinear interpolation of the sampled field at an arbitrary point
    // (clamped to the grid bounds).
    float interpolate(Vec3f p) const;

    const std::vector<float>& values() const { return values_; }
    std::vector<float>& values() { return values_; }

private:
    std::size_t index(int x, int y, int z) const {
        return (static_cast<std::size_t>(z) * (res_.y + 1) + static_cast<std::size_t>(y)) *
                   (res_.x + 1) +
               static_cast<std::size_t>(x);
    }

    AABB bounds_{};
    Vec3i res_{0, 0, 0};
    Vec3f cell_{};
    std::vector<float> values_;
};

}  // namespace semholo::mesh
