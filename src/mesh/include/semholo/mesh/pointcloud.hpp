// Point cloud container with optional normals/colours, plus the voxel
// downsampling and outlier filtering steps the multi-camera fusion uses.
#pragma once

#include <cstddef>
#include <vector>

#include "semholo/geometry/transform.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::mesh {

using geom::AABB;
using geom::Vec3f;

class PointCloud {
public:
    std::vector<Vec3f> points;
    std::vector<Vec3f> normals;  // empty or points.size()
    std::vector<Vec3f> colors;   // empty or points.size()

    std::size_t size() const { return points.size(); }
    bool empty() const { return points.empty(); }
    bool hasNormals() const { return normals.size() == points.size(); }
    bool hasColors() const { return colors.size() == points.size(); }

    void clear();
    void reserve(std::size_t n);
    void addPoint(Vec3f p);
    void addPoint(Vec3f p, Vec3f color);

    AABB bounds() const;
    Vec3f centroid() const;
    void transform(const geom::RigidTransform& xf);
    void append(const PointCloud& other);

    // Average points falling in the same cubic voxel of size 'voxelSize'.
    PointCloud voxelDownsample(float voxelSize) const;

    // Remove points whose mean distance to their k nearest neighbours
    // exceeds (mean + stddevFactor * stddev) over the whole cloud.
    PointCloud removeStatisticalOutliers(std::size_t k, float stddevFactor) const;

    std::size_t rawBytes() const {
        std::size_t b = points.size() * sizeof(Vec3f);
        if (hasNormals()) b += normals.size() * sizeof(Vec3f);
        if (hasColors()) b += colors.size() * sizeof(Vec3f);
        return b;
    }
};

}  // namespace semholo::mesh
