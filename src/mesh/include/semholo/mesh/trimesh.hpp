// Indexed triangle mesh with optional per-vertex normals, colours and UVs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "semholo/geometry/transform.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::mesh {

using geom::AABB;
using geom::Vec2f;
using geom::Vec3f;

struct Triangle {
    std::uint32_t a{}, b{}, c{};
    bool operator==(const Triangle&) const = default;
};

class TriMesh {
public:
    std::vector<Vec3f> vertices;
    std::vector<Triangle> triangles;
    std::vector<Vec3f> normals;  // per-vertex; empty or vertices.size()
    std::vector<Vec3f> colors;   // per-vertex RGB in [0,1]; empty or vertices.size()
    std::vector<Vec2f> uvs;      // per-vertex texture coords; empty or vertices.size()

    std::size_t vertexCount() const { return vertices.size(); }
    std::size_t triangleCount() const { return triangles.size(); }
    bool empty() const { return vertices.empty(); }
    bool hasNormals() const { return !vertices.empty() && normals.size() == vertices.size(); }
    bool hasColors() const { return !vertices.empty() && colors.size() == vertices.size(); }
    bool hasUVs() const { return !vertices.empty() && uvs.size() == vertices.size(); }

    void clear();

    AABB bounds() const;
    double surfaceArea() const;
    Vec3f triangleNormal(const Triangle& t) const;
    float triangleArea(const Triangle& t) const;
    Vec3f centroid() const;

    // Recompute per-vertex normals as area-weighted face normal averages.
    void computeVertexNormals();

    // Apply a rigid transform to vertices (and rotate normals) in place.
    void transform(const geom::RigidTransform& xf);

    // Merge vertices closer than 'epsilon'; remaps triangles and drops
    // degenerates. Returns the number of vertices removed.
    std::size_t weldVertices(float epsilon);

    // Remove triangles with repeated indices or (near-)zero area.
    std::size_t removeDegenerateTriangles(float areaEpsilon = 1e-12f);

    // Append another mesh (indices offset, attributes concatenated when
    // both meshes carry them, dropped otherwise).
    void append(const TriMesh& other);

    // Number of edges shared by != 2 triangles; 0 for a closed manifold.
    std::size_t countNonManifoldEdges() const;
    // Number of boundary edges (used by exactly one triangle).
    std::size_t countBoundaryEdges() const;

    // Serialized size of raw geometry (positions + indices) in bytes; this
    // is the "traditional communication" per-frame payload of Table 2.
    std::size_t rawGeometryBytes() const {
        return vertices.size() * sizeof(Vec3f) + triangles.size() * sizeof(Triangle);
    }
};

// Winding-preserving canonical form of a mesh's triangle list: each
// triangle becomes its three vertex positions, cyclically rotated so the
// lexicographically smallest position leads, and the list is sorted
// lexicographically. Two meshes produce equal soups iff they contain the
// same oriented triangles, independent of vertex numbering and emission
// order — the equivalence the iso-surface extractors are compared under.
std::vector<std::array<Vec3f, 3>> canonicalTriangleSoup(const TriMesh& m);

// Basic primitive generators (used in tests and synthetic scenes).
TriMesh makeBox(Vec3f halfExtents, Vec3f center = {});
TriMesh makeUVSphere(float radius, int stacks, int slices, Vec3f center = {});
TriMesh makeCylinder(float radius, float height, int slices, Vec3f center = {});

}  // namespace semholo::mesh
