// Block-sparse, parallel sampling of scalar fields into a VoxelGrid.
//
// Dense sampling evaluates the field at every grid node — the O(R^3)
// cost that makes Figure 4's FPS collapse cubically. For a field with a
// known Lipschitz bound L (|f(p) - f(q)| <= L*|p-q| + J, J covering any
// bounded discontinuities), whole blocks of nodes can be certified
// surface-free from ONE evaluation at the block center c:
//
//     |f(c)| > L * rGuard + J + margin
//
// where rGuard is the half-diagonal of the block's node region expanded
// by one cell on every side. The expansion is what makes skipping
// *exact*: every extraction cell that reads any node owned by a skipped
// block lies entirely inside the certified guard region, where the true
// field provably keeps the sign of f(c) — so the dense path would emit
// no triangles from those cells either. Skipped nodes are filled with
// f(c) (correct sign), sampled nodes are exact, and the extracted
// iso-surface is bit-identical to the dense path's.
//
// Work fans out over a core::ThreadPool. Each block's values depend only
// on the field and the block, never on scheduling, so results are
// deterministic across worker counts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "semholo/mesh/voxelgrid.hpp"

namespace semholo::core {
class ThreadPool;
}  // namespace semholo::core

namespace semholo::mesh {

struct FieldSampleOptions {
    // Nodes per block edge. 8 balances pruning granularity against
    // per-block overhead for body-scale grids.
    int blockSize{8};
    // Worker pool to fan blocks out over; nullptr runs serially (still
    // pruned). The pool is borrowed, not owned.
    core::ThreadPool* pool{nullptr};
    // Enable coarse-to-fine block pruning. Disable to force a dense
    // (but still parallel) pass, e.g. for fields without a usable bound.
    bool blockPruning{true};
    // Conservative Lipschitz bound L of the field. 1.0 is exact for any
    // metric SDF (min / smooth-min of capsule distances); fields with
    // domain warps or displacement maps must widen it (see
    // body::makeBodyField).
    float lipschitz{1.0f};
    // Additive slack J on the certification bound: bounded discontinuity
    // jumps plus any temporal-cache tolerance the caller relies on.
    float margin{0.0f};
    // Optional analytic certificate: certificate(center, radius) returns
    // true when the field provably has no iso-crossing within 'radius'
    // of 'center'. When set it replaces the Lipschitz test — composite
    // fields (the body's smooth-min capsule fold) certify far tighter
    // from their own geometry than from global L/J constants, which get
    // inflated by worst-case capsule cones and expression warps that
    // only act near the face. The caller must fold any temporal-cache
    // tolerance into the certificate itself.
    std::function<bool(geom::Vec3f center, float radius)> certificate;
    // Optional SoA batch evaluator paired with the field (must return
    // bit-identical values — see BatchScalarField). When set, fully
    // sampled blocks evaluate all their nodes in one call instead of one
    // std::function dispatch per node.
    BatchScalarField batch;
    // Test certificates on a coarse-to-fine octree of block nodes before
    // touching individual blocks: one certificate test at depth k covers
    // up to 8^k blocks, and a certified coarse node fills its whole
    // subtree from a single field probe. Only engages when an analytic
    // certificate is set; verdicts stay exact (a coarse node's ball
    // contains every descendant block's guard region).
    bool hierarchical{true};
};

struct FieldSampleStats {
    std::size_t blocksTotal{};
    std::size_t blocksSampled{};    // fully evaluated this pass
    std::size_t blocksSkipped{};    // certified surface-free, filled
    std::size_t blocksCached{};     // reused from a previous pass
    // Of blocksSkipped, how many were filled from a certified octree
    // ancestor rather than their own leaf test.
    std::size_t blocksCoarseFilled{};
    std::uint64_t nodesEvaluated{}; // field evaluations incl. block centers
    std::uint64_t nodesTotal{};     // grid nodes the dense path would touch
    std::uint64_t certTests{};      // analytic certificate invocations

    void merge(const FieldSampleStats& other);
    double evalFraction() const {
        return nodesTotal > 0
                   ? static_cast<double>(nodesEvaluated) /
                         static_cast<double>(nodesTotal)
                   : 0.0;
    }
};

// Tiles a VoxelGrid into cubical node blocks and samples a field into it
// sparsely. Block geometry is stable for the grid's lifetime, so callers
// implementing temporal caches can address blocks by index across
// frames (see recon::SparseReconstructor).
class BlockSampler {
public:
    BlockSampler(VoxelGrid& grid, int blockSize);

    int blockCount() const { return blocks_.x * blocks_.y * blocks_.z; }
    Vec3i blockGrid() const { return blocks_; }
    int blockSize() const { return blockSize_; }

    // World-space AABB of the block's guard region (node region expanded
    // by one cell): the region whose field values the block's skip
    // certificate must cover, and the region a bone must clear for the
    // temporal cache to keep the block.
    geom::AABB blockGuardBounds(int block) const;
    Vec3f blockCenter(int block) const;
    // Half-diagonal of the guard region (the rGuard of the skip bound).
    float guardRadius() const { return guardRadius_; }

    // Sample 'field' into the grid. When 'dirty' is non-null it must
    // have blockCount() entries; blocks with dirty[b] == 0 are left
    // untouched and counted as blocksCached. Every dirty block is either
    // fully evaluated or, if certifiably surface-free under the options'
    // Lipschitz bound, filled with its center value.
    FieldSampleStats sample(const ScalarField& field,
                            const FieldSampleOptions& options,
                            const std::vector<std::uint8_t>* dirty = nullptr);

    // Per-block surface-free verdicts from the most recent pass(es):
    // 1 when the block was skip-certified (no iso-crossing anywhere in
    // its guard region), 0 when it was fully sampled or never processed.
    // Cached blocks keep the flag from the pass that last processed
    // them — valid as long as the caller's cache invariant holds (the
    // certificate it sampled with covered any drift it allows). Sparse
    // extraction uses this to visit only cells that can hold surface.
    const std::vector<std::uint8_t>& surfaceFree() const { return surfaceFree_; }

    // Flattened block index of the block owning cell (cx, cy, cz) — the
    // block whose guard region wholly contains that cell.
    int cellBlock(int cx, int cy, int cz) const {
        return (cx / blockSize_) +
               blocks_.x * ((cy / blockSize_) + blocks_.y * (cz / blockSize_));
    }

    // Bounding ball of an octree node's block range: contains the guard
    // region of every block in [lo, hi] (block coords, inclusive), so a
    // certificate that holds on the ball holds for every descendant.
    void nodeBall(Vec3i lo, Vec3i hi, Vec3f& center, float& radius) const;

private:
    struct BlockRange {
        Vec3i nodeLo;  // first owned node (inclusive)
        Vec3i nodeHi;  // last owned node (inclusive)
    };
    BlockRange blockRange(int block) const;
    Vec3i blockCoord(int block) const;
    int blockIndex(Vec3i c) const {
        return c.x + blocks_.x * (c.y + blocks_.y * c.z);
    }
    std::uint64_t ownedNodes(int block) const;
    void fillBlock(int block, float value);
    // Evaluate or fill one block; returns nodes evaluated and whether the
    // block was skipped.
    void processBlock(int block, const ScalarField& field,
                      const FieldSampleOptions& options, FieldSampleStats& stats);
    // Coarse-to-fine certificate descent: appends blocks needing a leaf
    // pass to 'work' and coarse fills to 'fills'.
    struct CoarseFill {
        int block;
        float value;
    };
    void descend(Vec3i lo, Vec3i hi, const std::vector<std::uint8_t>& dirtyLeaf,
                 const ScalarField& field, const FieldSampleOptions& options,
                 FieldSampleStats& stats, std::vector<int>& work,
                 std::vector<CoarseFill>& fills);

    VoxelGrid& grid_;
    int blockSize_{8};
    Vec3i blocks_{};
    float guardRadius_{0.0f};
    std::vector<std::uint8_t> surfaceFree_;
};

}  // namespace semholo::mesh
