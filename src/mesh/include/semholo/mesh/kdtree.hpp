// Static KD-tree over 3D points: nearest-neighbour and radius queries.
// Used by the geometry metrics (Chamfer/Hausdorff), outlier filtering
// and normal estimation.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "semholo/geometry/vec.hpp"

namespace semholo::mesh {

using geom::Vec3f;

class KdTree {
public:
    KdTree() = default;
    explicit KdTree(std::span<const Vec3f> points) { build(points); }

    void build(std::span<const Vec3f> points);
    bool empty() const { return nodes_.empty(); }
    std::size_t size() const { return points_.size(); }

    struct Hit {
        std::uint32_t index{std::numeric_limits<std::uint32_t>::max()};
        float distance2{std::numeric_limits<float>::max()};
        bool valid() const { return index != std::numeric_limits<std::uint32_t>::max(); }
    };

    // Closest point to the query; Hit::valid() is false on an empty tree.
    Hit nearest(Vec3f query) const;

    // Indices of the k nearest points, closest first.
    std::vector<Hit> kNearest(Vec3f query, std::size_t k) const;

    // All point indices within 'radius' of the query.
    std::vector<std::uint32_t> radiusSearch(Vec3f query, float radius) const;

    const Vec3f& point(std::uint32_t index) const { return points_[index]; }

private:
    struct Node {
        // Leaf when count > 0 (then 'first' indexes into order_);
        // otherwise an inner node splitting on 'axis' at 'split'.
        float split{};
        std::uint32_t first{};
        std::uint16_t count{};
        std::uint8_t axis{};
        std::uint32_t right{};  // left child is the next node in the array
    };

    std::uint32_t buildRecursive(std::uint32_t begin, std::uint32_t end);

    std::vector<Vec3f> points_;
    std::vector<std::uint32_t> order_;
    std::vector<Node> nodes_;

    static constexpr std::uint16_t kLeafSize = 12;
};

}  // namespace semholo::mesh
