// Geometric fidelity metrics used to quantify the paper's "visual
// quality" axis (Figures 2 and 3): Chamfer and Hausdorff distances,
// point-to-plane error, MPEG-style point-cloud PSNR, and normal
// consistency.
#pragma once

#include "semholo/mesh/pointcloud.hpp"
#include "semholo/mesh/trimesh.hpp"

namespace semholo::mesh {

struct GeometryErrorStats {
    double meanForward{};    // mean distance A -> B
    double meanBackward{};   // mean distance B -> A
    double chamfer{};        // symmetric mean (average of the two)
    double hausdorff{};      // max over both directions
    double rmse{};           // symmetric root-mean-square distance
    double normalConsistency{};  // mean |n_a . n_b| over matches, in [0,1]
    // MPEG point-to-point geometry PSNR (dB) using the bounding-box
    // diagonal of the reference as the signal peak.
    double psnr{};
};

// Compare two point sets (with optional normals for normal consistency).
GeometryErrorStats compareClouds(const PointCloud& a, const PointCloud& b);

// Compare two meshes by area-weighted surface sampling with
// 'samplesPerMesh' points each. Deterministic given 'seed'.
GeometryErrorStats compareMeshes(const TriMesh& a, const TriMesh& b,
                                 std::size_t samplesPerMesh = 20000,
                                 std::uint64_t seed = 7);

// Mean distance from each point of 'cloud' to the surface of 'reference'
// (point-to-mesh, using exact closest-point-on-triangle queries against
// a KD-tree of triangle centroids for candidate pruning).
double pointToMeshError(const PointCloud& cloud, const TriMesh& reference);

}  // namespace semholo::mesh
