// Minimal OBJ and PLY import/export for meshes and point clouds.
// Enough to inspect reconstructions in external viewers and to round-trip
// test the codecs; not a general-purpose loader.
#pragma once

#include <string>

#include "semholo/mesh/pointcloud.hpp"
#include "semholo/mesh/trimesh.hpp"

namespace semholo::mesh {

// OBJ: positions + triangles (+ normals and uvs when present).
bool saveOBJ(const TriMesh& mesh, const std::string& path);
bool loadOBJ(const std::string& path, TriMesh& out);

// ASCII PLY: mesh with optional per-vertex colour.
bool savePLY(const TriMesh& mesh, const std::string& path);
// ASCII PLY point cloud with optional colour/normals.
bool savePLY(const PointCloud& cloud, const std::string& path);
bool loadPLY(const std::string& path, TriMesh& out);

}  // namespace semholo::mesh
