#include "semholo/textsem/captioner.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace semholo::textsem {

using body::JointId;
using body::kJointCount;

std::string cellName(BodyCell cell) {
    switch (cell) {
        case BodyCell::Torso: return "torso";
        case BodyCell::HeadFace: return "head_face";
        case BodyCell::LeftArm: return "left_arm";
        case BodyCell::RightArm: return "right_arm";
        case BodyCell::LeftHand: return "left_hand";
        case BodyCell::RightHand: return "right_hand";
        case BodyCell::LeftLeg: return "left_leg";
        case BodyCell::RightLeg: return "right_leg";
        case BodyCell::Count: break;
    }
    return "unknown";
}

BodyCell cellOfJoint(JointId joint) {
    const std::size_t j = body::index(joint);
    using body::index;
    if (j >= index(JointId::LeftThumb1) && j <= index(JointId::LeftPinky3))
        return BodyCell::LeftHand;
    if (j >= index(JointId::RightThumb1) && j <= index(JointId::RightPinky3))
        return BodyCell::RightHand;
    if (j >= index(JointId::LeftClavicle) && j <= index(JointId::LeftWrist))
        return BodyCell::LeftArm;
    if (j >= index(JointId::RightClavicle) && j <= index(JointId::RightWrist))
        return BodyCell::RightArm;
    if (j >= index(JointId::LeftHip) && j <= index(JointId::LeftFoot))
        return BodyCell::LeftLeg;
    if (j >= index(JointId::RightHip) && j <= index(JointId::RightFoot))
        return BodyCell::RightLeg;
    if (j >= index(JointId::Neck) && j <= index(JointId::RightEye))
        return BodyCell::HeadFace;
    return BodyCell::Torso;
}

std::size_t TextFrame::totalBytes() const {
    std::size_t n = global.size();
    for (const std::string& c : cells) n += c.size();
    return n;
}

std::string TextFrame::concatenated() const {
    std::string out = global;
    for (const std::string& c : cells) {
        out += '\n';
        out += c;
    }
    return out;
}

namespace {

constexpr double kRadToDeg = 180.0 / M_PI;
constexpr double kDegToRad = M_PI / 180.0;

// Short joint token: strip the cell prefix from the skeleton name where
// possible to keep captions compact.
std::string jointToken(JointId id) {
    return std::string(body::Skeleton::canonical().name(id));
}

long quantize(double value, double step) {
    return std::lround(value / step);
}

}  // namespace

TextFrame captionPose(const body::Pose& pose, const CaptionOptions& options) {
    TextFrame frame;
    // Global channel: root position (cm) and the pelvis orientation —
    // the "global features" channel of section 3.3's two-step encoding.
    {
        std::ostringstream ss;
        const auto& t = pose.rootTranslation;
        ss << "global: frame " << pose.frameId << "; pos "
           << quantize(t.x * 100.0, 1.0) << ' ' << quantize(t.y * 100.0, 1.0) << ' '
           << quantize(t.z * 100.0, 1.0);
        const auto& r = pose.jointRotations[body::index(JointId::Pelvis)];
        ss << "; orient " << quantize(r.x * kRadToDeg, 2.0) << ' '
           << quantize(r.y * kRadToDeg, 2.0) << ' ' << quantize(r.z * kRadToDeg, 2.0);
        frame.global = ss.str();
    }

    // Local channels: every non-identity joint rotation in its cell,
    // quantised at the cell's quality step.
    std::array<std::ostringstream, kCellCount> cellStreams;
    std::array<bool, kCellCount> started{};
    for (std::size_t j = 0; j < kJointCount; ++j) {
        const auto id = static_cast<JointId>(j);
        if (id == JointId::Pelvis) continue;  // carried on the global channel
        const BodyCell cell = cellOfJoint(id);
        const auto ci = static_cast<std::size_t>(cell);
        const double step = options.quality[ci].angleStepDeg;
        const auto& r = pose.jointRotations[j];
        const long qx = quantize(r.x * kRadToDeg, step);
        const long qy = quantize(r.y * kRadToDeg, step);
        const long qz = quantize(r.z * kRadToDeg, step);
        if (qx == 0 && qy == 0 && qz == 0) continue;  // rest joints omitted
        if (!started[ci]) {
            cellStreams[ci] << cellName(cell) << ':';
            started[ci] = true;
        }
        cellStreams[ci] << ' ' << jointToken(id) << ' ' << qx << ' ' << qy << ' '
                        << qz << ';';
    }

    // Expression coefficients ride the head_face channel.
    {
        const auto ci = static_cast<std::size_t>(BodyCell::HeadFace);
        std::ostringstream& ss = cellStreams[ci];
        bool anyExpr = false;
        for (std::size_t e = 0; e < pose.expression.coeffs.size(); ++e) {
            const long q = quantize(pose.expression.coeffs[e], options.expressionStep);
            if (q == 0) continue;
            if (!started[ci]) {
                ss << cellName(BodyCell::HeadFace) << ':';
                started[ci] = true;
            }
            if (!anyExpr) {
                ss << " expr";
                anyExpr = true;
            }
            ss << ' ' << e << '=' << q;
        }
        if (anyExpr) ss << ';';
    }

    for (std::size_t c = 0; c < kCellCount; ++c) frame.cells[c] = cellStreams[c].str();
    return frame;
}

std::optional<body::Pose> parseCaption(const TextFrame& frame,
                                       const body::ShapeParams& shape,
                                       const CaptionOptions& options) {
    body::Pose pose;
    pose.shape = shape;

    // Global channel.
    {
        std::istringstream ss(frame.global);
        std::string tag;
        ss >> tag;
        if (tag != "global:") return std::nullopt;
        std::string word;
        while (ss >> word) {
            if (word == "frame") {
                long f;
                if (!(ss >> f)) return std::nullopt;
                pose.frameId = static_cast<std::uint32_t>(f);
            } else if (word == "pos") {
                long x, y, z;
                if (!(ss >> x >> y >> z)) return std::nullopt;
                pose.rootTranslation = {static_cast<float>(x) / 100.0f,
                                        static_cast<float>(y) / 100.0f,
                                        static_cast<float>(z) / 100.0f};
            } else if (word == "orient") {
                long x, y, z;
                if (!(ss >> x >> y >> z)) return std::nullopt;
                pose.jointRotations[body::index(JointId::Pelvis)] = {
                    static_cast<float>(x * 2.0 * kDegToRad),
                    static_cast<float>(y * 2.0 * kDegToRad),
                    static_cast<float>(z * 2.0 * kDegToRad)};
            }
        }
        // Strip optional ';' handled by the lenient tokenizer below.
    }

    // Joint-name lookup.
    const body::Skeleton& sk = body::Skeleton::canonical();
    std::map<std::string, JointId, std::less<>> byName;
    for (const auto& j : sk.joints()) byName.emplace(std::string(j.name), j.id);

    const CaptionOptions& defaults = options;
    for (std::size_t c = 0; c < kCellCount; ++c) {
        const std::string& text = frame.cells[c];
        if (text.empty()) continue;
        // Tokenise on whitespace and ';'.
        std::string cleaned = text;
        for (char& ch : cleaned)
            if (ch == ';' || ch == ':') ch = ' ';
        std::istringstream ss(cleaned);
        std::string word;
        ss >> word;  // cell name
        const double step = defaults.quality[c].angleStepDeg;
        while (ss >> word) {
            if (word == "expr") {
                // expression entries "index=value" until end.
                std::string entry;
                while (ss >> entry) {
                    const auto eq = entry.find('=');
                    if (eq == std::string::npos) break;
                    const int idx = std::stoi(entry.substr(0, eq));
                    const long q = std::stol(entry.substr(eq + 1));
                    if (idx >= 0 &&
                        idx < static_cast<int>(pose.expression.coeffs.size()))
                        pose.expression.coeffs[static_cast<std::size_t>(idx)] =
                            static_cast<double>(q) * defaults.expressionStep;
                }
                continue;
            }
            const auto it = byName.find(word);
            if (it == byName.end()) return std::nullopt;
            long x, y, z;
            if (!(ss >> x >> y >> z)) return std::nullopt;
            pose.jointRotations[body::index(it->second)] = {
                static_cast<float>(x * step * kDegToRad),
                static_cast<float>(y * step * kDegToRad),
                static_cast<float>(z * step * kDegToRad)};
        }
    }
    return pose;
}

double captionCostMs(std::size_t cellsEncoded, const TextCostModel& model) {
    return model.captionGlobalMs +
           static_cast<double>(cellsEncoded) * model.captionPerCellMs;
}

double reconCostMs(std::size_t cellsDecoded, const TextCostModel& model) {
    return model.reconGlobalMs +
           static_cast<double>(cellsDecoded) * model.reconPerCellMs;
}

}  // namespace semholo::textsem
