#include "semholo/textsem/delta.hpp"

#include <bit>

#include "semholo/compress/codec2.hpp"

namespace semholo::textsem {

namespace {

// Channel texts are joined with '\x1f' (unit separator) before LZC.
constexpr char kSep = '\x1f';

std::vector<std::uint8_t> packChannels(const TextFrame& frame, bool globalPresent,
                                       std::uint32_t mask) {
    std::string joined;
    if (globalPresent) joined += frame.global;
    for (std::size_t c = 0; c < kCellCount; ++c) {
        if (!(mask & (1u << c))) continue;
        joined += kSep;
        joined += frame.cells[c];
    }
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(joined.data()), joined.size());
    // Codec v2 with the text profile: no byte-lane filters, lzc backend.
    return compress::codec2Encode(bytes, compress::textCodecDefaults());
}

}  // namespace

std::size_t DeltaPacket::cellsEncoded() const {
    return static_cast<std::size_t>(std::popcount(channelMask));
}

DeltaEncoder::DeltaEncoder(const CaptionOptions& options) : options_(options) {}

DeltaPacket DeltaEncoder::encode(const body::Pose& pose, bool forceKeyframe) {
    const TextFrame frame = captionPose(pose, options_);
    DeltaPacket packet;
    packet.frameId = pose.frameId;
    packet.keyframe = forceKeyframe || !havePrevious_;

    if (packet.keyframe) {
        packet.globalPresent = true;
        packet.channelMask = (1u << kCellCount) - 1u;
    } else {
        packet.globalPresent = frame.global != previous_.global;
        for (std::size_t c = 0; c < kCellCount; ++c)
            if (frame.cells[c] != previous_.cells[c])
                packet.channelMask |= 1u << c;
    }
    // A delta frame must still let the decoder update frame ids; carry
    // the global channel whenever anything changed.
    if (packet.channelMask != 0) packet.globalPresent = true;

    packet.payload = packChannels(frame, packet.globalPresent, packet.channelMask);
    previous_ = frame;
    havePrevious_ = true;
    return packet;
}

DeltaDecoder::DeltaDecoder(const CaptionOptions& options,
                           const body::ShapeParams& shape)
    : options_(options), shape_(shape) {}

std::optional<body::Pose> DeltaDecoder::decode(const DeltaPacket& packet) {
    if (!packet.keyframe && !haveState_) return std::nullopt;

    const auto joinedOpt = compress::codec2Decode(packet.payload);
    if (!joinedOpt) return std::nullopt;
    const std::string joined(joinedOpt->begin(), joinedOpt->end());

    // Split on the unit separator.
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t sep = joined.find(kSep, start);
        parts.push_back(joined.substr(start, sep - start));
        if (sep == std::string::npos) break;
        start = sep + 1;
    }

    std::size_t next = 0;
    TextFrame updated = haveState_ ? state_ : TextFrame{};
    if (packet.globalPresent) {
        if (next >= parts.size()) return std::nullopt;
        updated.global = parts[next++];
    }
    for (std::size_t c = 0; c < kCellCount; ++c) {
        if (!(packet.channelMask & (1u << c))) continue;
        if (next >= parts.size()) return std::nullopt;
        updated.cells[c] = parts[next++];
    }

    auto pose = parseCaption(updated, shape_, options_);
    if (!pose) return std::nullopt;
    state_ = updated;
    haveState_ = true;
    pose->frameId = packet.frameId;
    return pose;
}

}  // namespace semholo::textsem
