// Inter-frame delta captioning (section 3.3, "Real-time Extraction and
// Reconstruction"): the first frame carries every channel; subsequent
// frames carry only the channels whose quantised caption changed.
// Unchanged cells cost neither bytes nor (simulated) captioning /
// text-to-3D inference, which is exactly the saving the paper proposes
// to exploit from the continuity of human motion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "semholo/textsem/captioner.hpp"

namespace semholo::textsem {

// A delta-encoded frame ready for the wire.
struct DeltaPacket {
    std::uint32_t frameId{};
    bool keyframe{};                      // all channels present
    std::uint32_t channelMask{};          // bit c set = cell c present
    bool globalPresent{};
    std::vector<std::uint8_t> payload;    // LZC-compressed channel texts

    std::size_t wireBytes() const { return payload.size() + 9; }
    std::size_t cellsEncoded() const;
};

class DeltaEncoder {
public:
    explicit DeltaEncoder(const CaptionOptions& options = {});

    // Encode the next frame; emits a keyframe for the first frame or when
    // 'forceKeyframe' is set (e.g. after receiver feedback of loss).
    DeltaPacket encode(const body::Pose& pose, bool forceKeyframe = false);

    void reset() { havePrevious_ = false; }
    const CaptionOptions& options() const { return options_; }

private:
    CaptionOptions options_;
    TextFrame previous_;
    bool havePrevious_{false};
};

class DeltaDecoder {
public:
    explicit DeltaDecoder(const CaptionOptions& options = {},
                          const body::ShapeParams& shape = {});

    // Returns the reconstructed pose, or nullopt for malformed input or a
    // delta that arrived before any keyframe.
    std::optional<body::Pose> decode(const DeltaPacket& packet);

    void reset() { haveState_ = false; }

private:
    CaptionOptions options_;
    body::ShapeParams shape_;
    TextFrame state_;
    bool haveState_{false};
};

}  // namespace semholo::textsem
