// Text-based semantics (section 3.3): translate body state into textual
// descriptions and back.
//
// Substitution note (DESIGN.md): the paper builds on 3D dense captioning
// (Scan2Cap-class) and text-to-3D generation (Point-E/DreamFusion-class)
// neural models. We replace both with a deterministic pose-grammar
// captioner: the human model is partitioned into cells (section 3.3's
// proposal), a *global channel* carries the overall body position and
// orientation, and *local channels* carry per-cell joint descriptions in
// a compact human-readable grammar, e.g.
//     "left_arm: shoulder 40 -12 3; elbow 85 0 0; wrist 0 5 0"
// Angles are quantised per-cell (the per-channel quality levels of
// section 3.3). Reconstruction parses the text back into a pose and runs
// the shared implicit-body reconstruction. The simulated inference cost
// model is calibrated to published captioning / text-to-3D latencies and
// drives the Table 1 overhead rows.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>

#include "semholo/body/pose.hpp"

namespace semholo::textsem {

// Body cells: section 3.3 proposes partitioning the human model and
// describing each cell on its own channel.
enum class BodyCell : std::uint8_t {
    Torso = 0,
    HeadFace,
    LeftArm,
    RightArm,
    LeftHand,
    RightHand,
    LeftLeg,
    RightLeg,
    Count
};
inline constexpr std::size_t kCellCount = static_cast<std::size_t>(BodyCell::Count);

std::string cellName(BodyCell cell);
BodyCell cellOfJoint(body::JointId joint);

struct CellQuality {
    // Quantisation step for joint angles, degrees. Smaller = more text,
    // higher fidelity (the per-channel quality ladder of section 3.3).
    double angleStepDeg{3.0};
};

struct CaptionOptions {
    std::array<CellQuality, kCellCount> quality{};
    // Expression coefficients are carried on the HeadFace channel,
    // quantised to this step.
    double expressionStep{0.05};
};

// A captioned frame: one global channel + one channel per cell.
struct TextFrame {
    std::string global;
    std::array<std::string, kCellCount> cells;

    std::size_t totalBytes() const;
    std::string concatenated() const;
};

// Encode a pose into the text channels.
TextFrame captionPose(const body::Pose& pose, const CaptionOptions& options = {});

// Parse text channels back into a pose (quantised). Returns nullopt on
// malformed input. 'shape' is the session-constant subject shape and
// 'options' must match the encoder's (quality steps are negotiated once
// per session).
std::optional<body::Pose> parseCaption(const TextFrame& frame,
                                       const body::ShapeParams& shape = {},
                                       const CaptionOptions& options = {});

// Simulated DL inference costs (ms). 3D dense captioning and text-to-3D
// diffusion are the heavy stages the paper's Table 1 marks "H"; values
// follow published per-frame orders of magnitude scaled per cell.
struct TextCostModel {
    double captionPerCellMs{45.0};   // Scan2Cap-class per region
    double captionGlobalMs{60.0};    // global feature extraction
    double reconPerCellMs{180.0};    // text-to-3D per region
    double reconGlobalMs{120.0};
};

double captionCostMs(std::size_t cellsEncoded, const TextCostModel& model = {});
double reconCostMs(std::size_t cellsDecoded, const TextCostModel& model = {});

}  // namespace semholo::textsem
