#include "semholo/nerf/renderer.hpp"

#include <cmath>

namespace semholo::nerf {

namespace {

struct RaySample {
    Vec3f point;
    float delta;
    FieldSample fs;
    MlpActivations acts;
    std::vector<float> raw;
};

// Shared compositing math: alpha_i = 1 - exp(-sigma_i * delta_i).
float alphaOf(const FieldSample& fs, float delta) {
    return 1.0f - std::exp(-fs.density * delta);
}

}  // namespace

Vec3f renderRay(const RadianceField& field, const Ray& ray,
                const RenderOptions& options) {
    const float step = (options.far - options.near) /
                       static_cast<float>(options.samplesPerRay);
    Vec3f color{};
    float transmittance = 1.0f;
    for (int i = 0; i < options.samplesPerRay; ++i) {
        const float t = options.near + (static_cast<float>(i) + 0.5f) * step;
        const FieldSample fs = field.query(ray.at(t), options.widthFraction);
        const float alpha = alphaOf(fs, step);
        color += fs.color * (transmittance * alpha);
        transmittance *= 1.0f - alpha;
        if (transmittance < 1e-4f) break;
    }
    return color + options.background * transmittance;
}

RGBImage renderImage(const RadianceField& field, const Camera& camera,
                     const RenderOptions& options) {
    RGBImage img(camera.intrinsics.width, camera.intrinsics.height);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const Ray ray = camera.pixelRayWorld(
                {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f});
            img.at(x, y) = renderRay(field, ray, options);
        }
    }
    return img;
}

double trainStep(RadianceField& field, std::span<const TrainRay> batch,
                 const RenderOptions& options, const AdamConfig& adam) {
    if (batch.empty()) return 0.0;
    field.zeroGradients();
    double totalLoss = 0.0;

    const float step = (options.far - options.near) /
                       static_cast<float>(options.samplesPerRay);

    std::vector<RaySample> samples(static_cast<std::size_t>(options.samplesPerRay));
    for (const TrainRay& tr : batch) {
        // Forward: keep every sample's activations.
        Vec3f color{};
        std::vector<float> transmittance(
            static_cast<std::size_t>(options.samplesPerRay) + 1);
        transmittance[0] = 1.0f;
        std::vector<float> alpha(static_cast<std::size_t>(options.samplesPerRay));
        for (int i = 0; i < options.samplesPerRay; ++i) {
            RaySample& s = samples[static_cast<std::size_t>(i)];
            const float t = options.near + (static_cast<float>(i) + 0.5f) * step;
            s.point = tr.ray.at(t);
            s.delta = step;
            s.fs = field.queryForTraining(s.point, options.widthFraction, s.acts,
                                          s.raw);
            alpha[static_cast<std::size_t>(i)] = alphaOf(s.fs, step);
            color += s.fs.color * (transmittance[static_cast<std::size_t>(i)] *
                                   alpha[static_cast<std::size_t>(i)]);
            transmittance[static_cast<std::size_t>(i) + 1] =
                transmittance[static_cast<std::size_t>(i)] *
                (1.0f - alpha[static_cast<std::size_t>(i)]);
        }
        const float finalT = transmittance[static_cast<std::size_t>(options.samplesPerRay)];
        color += options.background * finalT;

        // MSE loss and dL/dC.
        const Vec3f diff = color - tr.target;
        totalLoss += static_cast<double>(diff.norm2()) / 3.0;
        const Vec3f dC = diff * (2.0f / 3.0f);

        // Backward through compositing. With w_i = T_i * a_i:
        //   dC/dc_i = w_i
        //   dC/da_i = T_i * c_i - (1/(1-a_i)) * [ sum_{k>i} w_k c_k
        //             + bg * T_N ]
        // computed with a suffix accumulator.
        Vec3f suffix = options.background * finalT;  // contribution after i
        for (int i = options.samplesPerRay - 1; i >= 0; --i) {
            RaySample& s = samples[static_cast<std::size_t>(i)];
            const float ai = alpha[static_cast<std::size_t>(i)];
            const float Ti = transmittance[static_cast<std::size_t>(i)];
            const float wi = Ti * ai;

            const Vec3f dColor = dC * wi;
            float dAlpha;
            if (1.0f - ai > 1e-6f) {
                const Vec3f dCda = s.fs.color * Ti - suffix / (1.0f - ai);
                dAlpha = dC.dot(dCda);
            } else {
                dAlpha = dC.dot(s.fs.color * Ti);
            }
            // da/dsigma = delta * exp(-sigma * delta) = delta * (1 - a).
            const float dDensity = dAlpha * s.delta * (1.0f - ai);

            field.backward(s.point, s.acts, s.raw, dColor, dDensity);
            suffix += s.fs.color * wi;
        }
    }

    field.adamStep(adam, batch.size());
    return totalLoss / static_cast<double>(batch.size());
}

}  // namespace semholo::nerf
