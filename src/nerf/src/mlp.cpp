#include "semholo/nerf/mlp.hpp"

#include <cmath>
#include <cstring>
#include <random>

namespace semholo::nerf {

Mlp::Mlp(const MlpConfig& config) : config_(config) {
    std::mt19937_64 rng(config.seed);
    auto makeLayer = [&rng](int in, int out) {
        Layer layer;
        layer.in = in;
        layer.out = out;
        const std::size_t n = static_cast<std::size_t>(in) * out;
        layer.w.resize(n);
        layer.b.assign(static_cast<std::size_t>(out), 0.0f);
        // He initialisation for ReLU nets.
        std::normal_distribution<float> init(0.0f, std::sqrt(2.0f / static_cast<float>(in)));
        for (float& w : layer.w) w = init(rng);
        layer.gw.assign(n, 0.0f);
        layer.gb.assign(static_cast<std::size_t>(out), 0.0f);
        layer.mw.assign(n, 0.0f);
        layer.vw.assign(n, 0.0f);
        layer.mb.assign(static_cast<std::size_t>(out), 0.0f);
        layer.vb.assign(static_cast<std::size_t>(out), 0.0f);
        return layer;
    };

    int prev = config.inputDim;
    for (int i = 0; i < config.hiddenLayers; ++i) {
        layers_.push_back(makeLayer(prev, config.hiddenWidth));
        prev = config.hiddenWidth;
    }
    layers_.push_back(makeLayer(prev, config.outputDim));
}

std::size_t Mlp::parameterCount() const {
    std::size_t n = 0;
    for (const Layer& l : layers_) n += l.w.size() + l.b.size();
    return n;
}

int Mlp::effectiveWidth(float widthFraction) const {
    const float f = widthFraction <= 0.0f ? 1.0f : std::min(1.0f, widthFraction);
    return std::max(1, static_cast<int>(std::ceil(f * static_cast<float>(
                                                          config_.hiddenWidth))));
}

std::vector<float> Mlp::forward(std::span<const float> input, float widthFraction,
                                MlpActivations& acts) const {
    const int eff = effectiveWidth(widthFraction);
    acts.widthFraction = widthFraction;
    acts.pre.assign(layers_.size(), {});
    acts.post.assign(layers_.size(), {});

    std::vector<float> current(input.begin(), input.end());
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer& l = layers_[li];
        const bool lastLayer = li + 1 == layers_.size();
        // Active rows (outputs) and columns (inputs) under slimming.
        const int rows = lastLayer ? l.out : std::min(l.out, eff);
        const int cols = li == 0 ? l.in : std::min(l.in, eff);

        std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
        for (int r = 0; r < rows; ++r) {
            float acc = l.b[static_cast<std::size_t>(r)];
            const float* wrow = &l.w[static_cast<std::size_t>(r) * l.in];
            for (int c = 0; c < cols; ++c) acc += wrow[c] * current[static_cast<std::size_t>(c)];
            out[static_cast<std::size_t>(r)] = acc;
        }
        acts.pre[li] = out;
        if (!lastLayer) {
            for (float& v : out) v = v > 0.0f ? v : 0.0f;  // ReLU
        }
        acts.post[li] = out;
        current = std::move(out);
    }
    return current;
}

std::vector<float> Mlp::forward(std::span<const float> input,
                                float widthFraction) const {
    MlpActivations acts;
    return forward(input, widthFraction, acts);
}

std::vector<float> Mlp::backward(std::span<const float> input,
                                 const MlpActivations& acts,
                                 std::span<const float> dOutput) {
    const int eff = effectiveWidth(acts.widthFraction);
    std::vector<float> grad(dOutput.begin(), dOutput.end());

    for (std::size_t li = layers_.size(); li-- > 0;) {
        Layer& l = layers_[li];
        const bool lastLayer = li + 1 == layers_.size();
        const int rows = lastLayer ? l.out : std::min(l.out, eff);
        const int cols = li == 0 ? l.in : std::min(l.in, eff);

        // Gradient w.r.t. pre-activation: ReLU gate on hidden layers.
        if (!lastLayer) {
            for (int r = 0; r < rows; ++r)
                if (acts.pre[li][static_cast<std::size_t>(r)] <= 0.0f)
                    grad[static_cast<std::size_t>(r)] = 0.0f;
        }

        // Input to this layer.
        const std::vector<float>* below = li > 0 ? &acts.post[li - 1] : nullptr;
        std::vector<float> dIn(static_cast<std::size_t>(cols), 0.0f);
        for (int r = 0; r < rows; ++r) {
            const float g = grad[static_cast<std::size_t>(r)];
            l.gb[static_cast<std::size_t>(r)] += g;
            float* gwRow = &l.gw[static_cast<std::size_t>(r) * l.in];
            const float* wRow = &l.w[static_cast<std::size_t>(r) * l.in];
            for (int c = 0; c < cols; ++c) {
                const float x = below ? (*below)[static_cast<std::size_t>(c)]
                                      : input[static_cast<std::size_t>(c)];
                gwRow[c] += g * x;
                dIn[static_cast<std::size_t>(c)] += g * wRow[c];
            }
        }
        grad = std::move(dIn);
    }
    return grad;
}

void Mlp::zeroGradients() {
    for (Layer& l : layers_) {
        std::fill(l.gw.begin(), l.gw.end(), 0.0f);
        std::fill(l.gb.begin(), l.gb.end(), 0.0f);
    }
}

void Mlp::adamStep(const AdamConfig& config, std::size_t batchSize) {
    if (batchSize == 0) batchSize = 1;
    ++adamT_;
    const float scale = 1.0f / static_cast<float>(batchSize);
    const float correction1 =
        1.0f - std::pow(config.beta1, static_cast<float>(adamT_));
    const float correction2 =
        1.0f - std::pow(config.beta2, static_cast<float>(adamT_));

    auto update = [&](std::vector<float>& w, std::vector<float>& g,
                      std::vector<float>& m, std::vector<float>& v) {
        for (std::size_t i = 0; i < w.size(); ++i) {
            const float grad = g[i] * scale;
            m[i] = config.beta1 * m[i] + (1.0f - config.beta1) * grad;
            v[i] = config.beta2 * v[i] + (1.0f - config.beta2) * grad * grad;
            const float mHat = m[i] / correction1;
            const float vHat = v[i] / correction2;
            w[i] -= config.learningRate * mHat / (std::sqrt(vHat) + config.epsilon);
        }
    };
    for (Layer& l : layers_) {
        update(l.w, l.gw, l.mw, l.vw);
        update(l.b, l.gb, l.mb, l.vb);
    }
}

std::vector<std::uint8_t> Mlp::serialize() const {
    std::vector<std::uint8_t> out;
    auto putF = [&out](float f) {
        std::uint32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    };
    for (const Layer& l : layers_) {
        for (const float w : l.w) putF(w);
        for (const float b : l.b) putF(b);
    }
    return out;
}

bool Mlp::deserialize(std::span<const std::uint8_t> data) {
    if (data.size() != parameterCount() * 4) return false;
    std::size_t pos = 0;
    auto getF = [&data, &pos]() {
        std::uint32_t bits = 0;
        for (int i = 0; i < 4; ++i)
            bits |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        float f;
        std::memcpy(&f, &bits, sizeof(f));
        return f;
    };
    for (Layer& l : layers_) {
        for (float& w : l.w) w = getF();
        for (float& b : l.b) b = getF();
    }
    return true;
}

}  // namespace semholo::nerf
