#include "semholo/nerf/field.hpp"

#include <cmath>

namespace semholo::nerf {

std::vector<float> positionalEncoding(Vec3f p, int levels) {
    std::vector<float> out;
    out.reserve(static_cast<std::size_t>(positionalEncodingDim(levels)));
    out.push_back(p.x);
    out.push_back(p.y);
    out.push_back(p.z);
    float freq = 1.0f;
    for (int k = 0; k < levels; ++k) {
        for (int a = 0; a < 3; ++a) {
            const float v = p[static_cast<std::size_t>(a)] * freq;
            out.push_back(std::sin(v));
            out.push_back(std::cos(v));
        }
        freq *= 2.0f;
    }
    return out;
}

int positionalEncodingDim(int levels) { return 3 * (1 + 2 * levels); }

namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float softplus(float x) {
    // Numerically-stable softplus.
    return x > 20.0f ? x : std::log1p(std::exp(x));
}

MlpConfig mlpConfigFor(const FieldConfig& cfg) {
    MlpConfig m;
    m.inputDim = positionalEncodingDim(cfg.encodingLevels);
    m.outputDim = 4;  // rgb + density
    m.hiddenWidth = cfg.hiddenWidth;
    m.hiddenLayers = cfg.hiddenLayers;
    m.seed = cfg.seed;
    return m;
}

}  // namespace

RadianceField::RadianceField(const FieldConfig& config)
    : config_(config), mlp_(mlpConfigFor(config)) {}

FieldSample RadianceField::query(Vec3f p, float widthFraction) const {
    const auto enc = positionalEncoding(p, config_.encodingLevels);
    const auto raw = mlp_.forward(enc, widthFraction);
    return {{sigmoid(raw[0]), sigmoid(raw[1]), sigmoid(raw[2])}, softplus(raw[3])};
}

FieldSample RadianceField::queryForTraining(Vec3f p, float widthFraction,
                                            MlpActivations& acts,
                                            std::vector<float>& rawOut) const {
    const auto enc = positionalEncoding(p, config_.encodingLevels);
    rawOut = mlp_.forward(enc, widthFraction, acts);
    return {{sigmoid(rawOut[0]), sigmoid(rawOut[1]), sigmoid(rawOut[2])},
            softplus(rawOut[3])};
}

void RadianceField::backward(Vec3f p, const MlpActivations& acts,
                             const std::vector<float>& rawOut, Vec3f dColor,
                             float dDensity) {
    // Head Jacobians: sigmoid' = s(1-s); softplus' = sigmoid.
    std::vector<float> dRaw(4);
    for (int i = 0; i < 3; ++i) {
        const float s = sigmoid(rawOut[static_cast<std::size_t>(i)]);
        dRaw[static_cast<std::size_t>(i)] =
            dColor[static_cast<std::size_t>(i)] * s * (1.0f - s);
    }
    dRaw[3] = dDensity * sigmoid(rawOut[3]);
    const auto enc = positionalEncoding(p, config_.encodingLevels);
    mlp_.backward(enc, acts, dRaw);
}

std::size_t RadianceField::modelBytes(float widthFraction) const {
    // Parameters of the sub-network actually used at this fraction.
    const int eff = mlp_.effectiveWidth(widthFraction);
    const int in = positionalEncodingDim(config_.encodingLevels);
    std::size_t params = 0;
    int prev = in;
    for (int i = 0; i < config_.hiddenLayers; ++i) {
        params += static_cast<std::size_t>(prev) * eff + static_cast<std::size_t>(eff);
        prev = eff;
    }
    params += static_cast<std::size_t>(prev) * 4 + 4;
    return params * sizeof(float);
}

}  // namespace semholo::nerf
