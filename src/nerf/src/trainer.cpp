#include "semholo/nerf/trainer.hpp"

#include <chrono>
#include <cmath>

namespace semholo::nerf {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// xorshift for cheap deterministic sampling without <random> overhead.
std::uint64_t nextRand(std::uint64_t& state) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

TrainRay rayFor(const TrainView& view, int x, int y) {
    return {view.camera.pixelRayWorld(
                {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f}),
            view.image.at(x, y)};
}

}  // namespace

NerfTrainer::NerfTrainer(RadianceField& field, const TrainerConfig& config)
    : field_(field), config_(config), rngState_(config.seed | 1) {}

FineTuneStats NerfTrainer::runSteps(const std::vector<TrainRay>& pool, int steps) {
    FineTuneStats stats;
    if (pool.empty() || steps <= 0) return stats;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<TrainRay> batch;
    const std::size_t batchSize =
        std::min<std::size_t>(pool.size(), static_cast<std::size_t>(config_.raysPerStep));
    for (int s = 0; s < steps; ++s) {
        batch.clear();
        for (std::size_t i = 0; i < batchSize; ++i)
            batch.push_back(pool[nextRand(rngState_) % pool.size()]);
        stats.finalLoss = trainStep(field_, batch, config_.render, config_.adam);
        stats.raysUsed += batch.size();
        ++stats.steps;
    }
    stats.wallMs = msSince(t0);
    return stats;
}

FineTuneStats NerfTrainer::pretrain(const std::vector<TrainView>& views, int steps) {
    std::vector<TrainRay> pool;
    for (const TrainView& v : views) {
        for (int y = 0; y < v.image.height(); ++y)
            for (int x = 0; x < v.image.width(); ++x)
                pool.push_back(rayFor(v, x, y));
    }
    return runSteps(pool, steps);
}

FineTuneStats NerfTrainer::fineTuneOnChanges(const std::vector<TrainView>& previous,
                                             const std::vector<TrainView>& current,
                                             int steps, float changeThreshold) {
    std::vector<TrainRay> pool;
    for (std::size_t v = 0; v < current.size(); ++v) {
        const RGBImage& cur = current[v].image;
        const RGBImage* prev =
            v < previous.size() ? &previous[v].image : nullptr;
        for (int y = 0; y < cur.height(); ++y) {
            for (int x = 0; x < cur.width(); ++x) {
                bool changed = true;
                if (prev && prev->width() == cur.width() &&
                    prev->height() == cur.height()) {
                    const geom::Vec3f d = cur.at(x, y) - prev->at(x, y);
                    changed = (std::fabs(d.x) + std::fabs(d.y) + std::fabs(d.z)) /
                                  3.0f >
                              changeThreshold;
                }
                if (changed) pool.push_back(rayFor(current[v], x, y));
            }
        }
    }
    return runSteps(pool, steps);
}

double NerfTrainer::evaluatePSNR(const TrainView& view) const {
    const RGBImage rendered =
        renderImage(field_, view.camera, config_.render);
    return capture::imagePSNR(view.image, rendered);
}

std::size_t changedPixelCount(const RGBImage& previous, const RGBImage& current,
                              float threshold) {
    if (previous.width() != current.width() || previous.height() != current.height())
        return current.pixelCount();
    std::size_t count = 0;
    for (int y = 0; y < current.height(); ++y) {
        for (int x = 0; x < current.width(); ++x) {
            const geom::Vec3f d = current.at(x, y) - previous.at(x, y);
            if ((std::fabs(d.x) + std::fabs(d.y) + std::fabs(d.z)) / 3.0f > threshold)
                ++count;
        }
    }
    return count;
}

}  // namespace semholo::nerf
