// Differentiable volume rendering along camera rays (NeRF compositing),
// image rendering, and the ray-batch training step with full gradient
// flow through the compositing weights.
#pragma once

#include "semholo/capture/image.hpp"
#include "semholo/geometry/camera.hpp"
#include "semholo/nerf/field.hpp"

namespace semholo::nerf {

using capture::RGBImage;
using geom::Camera;
using geom::Ray;

struct RenderOptions {
    float near{1.0f};
    float far{6.0f};
    int samplesPerRay{24};
    Vec3f background{0.0f, 0.0f, 0.0f};
    float widthFraction{1.0f};
};

// Composite one ray through the field.
Vec3f renderRay(const RadianceField& field, const Ray& ray,
                const RenderOptions& options);

// Render a full image from a posed camera.
RGBImage renderImage(const RadianceField& field, const Camera& camera,
                     const RenderOptions& options);

// One supervised ray for training.
struct TrainRay {
    Ray ray;
    Vec3f target;
};

// One SGD/Adam step on a batch of rays. Returns the batch MSE loss.
// Gradients flow through compositing into the MLP (manual adjoint of the
// alpha-compositing recurrence).
double trainStep(RadianceField& field, std::span<const TrainRay> batch,
                 const RenderOptions& options, const AdamConfig& adam);

}  // namespace semholo::nerf
