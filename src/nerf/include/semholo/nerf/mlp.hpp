// A small fully-connected network with manual backprop and Adam — the
// learnable core of the image-semantics channel (section 3.2).
//
// The network is *slimmable* (Yu et al. style): forward/backward accept a
// width fraction and use only the first ceil(frac * width) units of every
// hidden layer. All sub-networks share weights, which is exactly the
// mechanism section 3.2 proposes for rate adaptation: a narrow sub-network
// serves low input resolutions, the full width serves high ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace semholo::nerf {

struct MlpConfig {
    int inputDim{3};
    int outputDim{4};
    int hiddenWidth{32};
    int hiddenLayers{2};
    std::uint64_t seed{1};
};

struct AdamConfig {
    float learningRate{1e-2f};
    float beta1{0.9f};
    float beta2{0.999f};
    float epsilon{1e-8f};
};

// Per-sample forward activations, needed for the backward pass.
struct MlpActivations {
    // pre[i] = layer i pre-activation, post[i] = after ReLU.
    std::vector<std::vector<float>> pre;
    std::vector<std::vector<float>> post;
    float widthFraction{1.0f};
};

class Mlp {
public:
    explicit Mlp(const MlpConfig& config);

    const MlpConfig& config() const { return config_; }
    std::size_t parameterCount() const;

    // Effective hidden width at a given fraction.
    int effectiveWidth(float widthFraction) const;

    // Forward pass; output is linear (callers apply their own heads).
    std::vector<float> forward(std::span<const float> input, float widthFraction,
                               MlpActivations& acts) const;
    std::vector<float> forward(std::span<const float> input,
                               float widthFraction = 1.0f) const;

    // Accumulate gradients for one sample given dL/d(output); returns
    // dL/d(input) (unused by most callers but cheap to produce).
    std::vector<float> backward(std::span<const float> input,
                                const MlpActivations& acts,
                                std::span<const float> dOutput);

    void zeroGradients();
    // One Adam update from the accumulated gradients (scaled by 1/batch).
    void adamStep(const AdamConfig& config, std::size_t batchSize);

    // Deterministic serialization (weights only) for model delivery.
    std::vector<std::uint8_t> serialize() const;
    bool deserialize(std::span<const std::uint8_t> data);

private:
    struct Layer {
        int in{}, out{};
        std::vector<float> w, b;      // weights (out x in), biases
        std::vector<float> gw, gb;    // gradient accumulators
        std::vector<float> mw, vw, mb, vb;  // Adam moments
    };

    MlpConfig config_;
    std::vector<Layer> layers_;
    std::int64_t adamT_{0};
};

}  // namespace semholo::nerf
