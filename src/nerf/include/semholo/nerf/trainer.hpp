// The live image-semantics training loop proposed in section 3.2:
//
//  * Cold start: before a user's first engagement, pre-train a dedicated
//    field on the initial multi-view frame.
//  * Continuous per-frame fine-tuning: for each live frame, find the
//    pixels that changed against the previous frame and fine-tune only
//    on rays through those pixels ("feeding features extracted from the
//    changed pixels").
//  * Slimmable rate adaptation: fine-tune and render at a width fraction
//    matched to the delivered image resolution.
#pragma once

#include <vector>

#include "semholo/nerf/renderer.hpp"

namespace semholo::nerf {

struct TrainView {
    Camera camera;
    RGBImage image;
};

struct TrainerConfig {
    RenderOptions render{};
    AdamConfig adam{};
    int raysPerStep{128};
    std::uint64_t seed{3};
};

struct FineTuneStats {
    int steps{0};
    std::size_t raysUsed{0};
    double finalLoss{0.0};
    double wallMs{0.0};
};

class NerfTrainer {
public:
    NerfTrainer(RadianceField& field, const TrainerConfig& config);

    // Cold-start pre-training on a full multi-view frame.
    FineTuneStats pretrain(const std::vector<TrainView>& views, int steps);

    // Per-frame fine-tune on the pixels that changed between the previous
    // and current images of each view (threshold on per-pixel MAE).
    FineTuneStats fineTuneOnChanges(const std::vector<TrainView>& previous,
                                    const std::vector<TrainView>& current,
                                    int steps, float changeThreshold = 0.02f);

    // Evaluation: PSNR of the field against a held-out view.
    double evaluatePSNR(const TrainView& view) const;

    const TrainerConfig& config() const { return config_; }

private:
    FineTuneStats runSteps(const std::vector<TrainRay>& pool, int steps);

    RadianceField& field_;
    TrainerConfig config_;
    std::uint64_t rngState_;
};

// Count of pixels whose colour changed beyond 'threshold' — the section
// 3.2 "changes in a user's profile over time are likely to be limited"
// signal; small counts mean cheap fine-tuning.
std::size_t changedPixelCount(const RGBImage& previous, const RGBImage& current,
                              float threshold);

}  // namespace semholo::nerf
