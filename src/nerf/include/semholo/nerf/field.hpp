// The neural radiance field: positional encoding + slimmable MLP with a
// colour/density head. Colours go through a sigmoid, density through a
// softplus, as in the original NeRF.
#pragma once

#include "semholo/geometry/vec.hpp"
#include "semholo/nerf/mlp.hpp"

namespace semholo::nerf {

using geom::Vec3f;

// gamma(p): [p, sin(2^k p), cos(2^k p)] for k = 0..levels-1, per axis.
// Output dimension = 3 * (1 + 2 * levels).
std::vector<float> positionalEncoding(Vec3f p, int levels);
int positionalEncodingDim(int levels);

struct FieldConfig {
    int encodingLevels{4};
    int hiddenWidth{48};
    int hiddenLayers{3};
    std::uint64_t seed{7};
};

struct FieldSample {
    Vec3f color{};     // after sigmoid, in [0,1]
    float density{};   // after softplus, >= 0
};

class RadianceField {
public:
    explicit RadianceField(const FieldConfig& config = {});

    FieldSample query(Vec3f p, float widthFraction = 1.0f) const;

    // Forward keeping activations, and backward taking dL/d(color) and
    // dL/d(density) in *post-head* space (the head Jacobian is applied
    // internally).
    FieldSample queryForTraining(Vec3f p, float widthFraction,
                                 MlpActivations& acts,
                                 std::vector<float>& rawOut) const;
    void backward(Vec3f p, const MlpActivations& acts,
                  const std::vector<float>& rawOut, Vec3f dColor, float dDensity);

    void zeroGradients() { mlp_.zeroGradients(); }
    void adamStep(const AdamConfig& adam, std::size_t batchSize) {
        mlp_.adamStep(adam, batchSize);
    }

    const Mlp& mlp() const { return mlp_; }
    Mlp& mlp() { return mlp_; }
    const FieldConfig& config() const { return config_; }

    // Model size in bytes at a given width fraction (what rate adaptation
    // would ship to a receiver for that quality level).
    std::size_t modelBytes(float widthFraction = 1.0f) const;

private:
    FieldConfig config_;
    Mlp mlp_;
};

}  // namespace semholo::nerf
